// Package digg provides the evaluation substrate of the paper: the Digg2009
// social news dataset ("Digg2009 datasite", collected by Lerman et al.).
//
// The original dump is no longer distributed, so this package offers two
// interchangeable sources (see DESIGN.md, substitution table):
//
//   - LoadFriendsCSV / graph.ReadEdgeList for users who have the original
//     files;
//   - Generate, a synthetic generator calibrated so that every statistic
//     the paper reports about Digg2009 is matched: 71,367 users, 1,731,658
//     friendship links, degree range [1, 995], average degree ≈ 24 and
//     ≈ 848 distinct degree groups.
//
// The mean-field model consumes only the degree distribution, so matching
// the published degree statistics reproduces the same group structure the
// paper simulated on.
package digg

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
	"rumornet/internal/stats"
)

// Published Digg2009 statistics from Section V of the paper.
const (
	PaperUsers      = 71367
	PaperLinks      = 1731658
	PaperGroups     = 848
	PaperMaxDegree  = 995
	PaperMinDegree  = 1
	PaperMeanDegree = 24.0
)

// Stats summarizes a Digg-like graph with the quantities the paper reports.
type Stats struct {
	Users         int
	Links         int
	Groups        int // distinct out-degree values
	MinDegree     int
	MaxDegree     int
	MeanDegree    float64
	PowerLawGamma float64 // MLE exponent of the out-degree tail (kmin=6)
	LargestWCC    int
}

// Summarize computes Stats for g.
func Summarize(g *graph.Graph) Stats {
	degs := g.OutDegrees()
	min := math.MaxInt
	for _, d := range degs {
		if d > 0 && d < min {
			min = d
		}
	}
	if min == math.MaxInt {
		min = 0
	}
	gamma, _, err := fitGamma(degs)
	if err != nil {
		gamma = math.NaN()
	}
	_, largest := g.WeaklyConnectedComponents()
	return Stats{
		Users:         g.NumNodes(),
		Links:         g.NumEdges(),
		Groups:        g.DistinctOutDegrees(),
		MinDegree:     min,
		MaxDegree:     g.MaxDegree(),
		MeanDegree:    g.MeanOutDegree(),
		PowerLawGamma: gamma,
		LargestWCC:    largest,
	}
}

// MatchesPaper reports whether s is consistent with the published Digg2009
// statistics within loose tolerances (the generator is stochastic), and
// describes the first mismatch otherwise.
func (s Stats) MatchesPaper() (bool, string) {
	switch {
	case s.Users != PaperUsers:
		return false, fmt.Sprintf("users = %d, want %d", s.Users, PaperUsers)
	case math.Abs(float64(s.Links)-PaperLinks) > 0.05*PaperLinks:
		return false, fmt.Sprintf("links = %d, want %d ±5%%", s.Links, PaperLinks)
	case s.MaxDegree != PaperMaxDegree:
		return false, fmt.Sprintf("max degree = %d, want %d", s.MaxDegree, PaperMaxDegree)
	case s.MinDegree != PaperMinDegree:
		return false, fmt.Sprintf("min degree = %d, want %d", s.MinDegree, PaperMinDegree)
	case math.Abs(s.MeanDegree-PaperMeanDegree) > 2:
		return false, fmt.Sprintf("mean degree = %.2f, want ≈%.0f", s.MeanDegree, PaperMeanDegree)
	case math.Abs(float64(s.Groups)-PaperGroups) > 0.15*PaperGroups:
		return false, fmt.Sprintf("degree groups = %d, want %d ±15%%", s.Groups, PaperGroups)
	}
	return true, ""
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"users=%d links=%d groups=%d degree=[%d,%d] mean=%.2f gamma=%.2f largestWCC=%d",
		s.Users, s.Links, s.Groups, s.MinDegree, s.MaxDegree, s.MeanDegree,
		s.PowerLawGamma, s.LargestWCC)
}

// CalibrateGamma finds the truncated-power-law exponent whose mean degree on
// [kmin, kmax] equals targetMean, by bisection. The mean is strictly
// decreasing in gamma, so the root is unique.
func CalibrateGamma(targetMean float64, kmin, kmax int) (float64, error) {
	if kmin < 1 || kmax <= kmin {
		return 0, fmt.Errorf("digg: invalid degree range [%d, %d]", kmin, kmax)
	}
	mean := func(gamma float64) (float64, error) {
		d, err := degreedist.TruncatedPowerLaw(gamma, kmin, kmax)
		if err != nil {
			return 0, err
		}
		return d.MeanDegree(), nil
	}
	lo, hi := 0.05, 6.0 // mean(lo) is large, mean(hi) ≈ kmin
	mLo, err := mean(lo)
	if err != nil {
		return 0, err
	}
	mHi, err := mean(hi)
	if err != nil {
		return 0, err
	}
	if targetMean > mLo || targetMean < mHi {
		return 0, fmt.Errorf("digg: target mean %.2f outside achievable [%.2f, %.2f]",
			targetMean, mHi, mLo)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-12; iter++ {
		mid := (lo + hi) / 2
		m, err := mean(mid)
		if err != nil {
			return 0, err
		}
		if m > targetMean {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// SampleDegreeSequence draws n out-degrees from the calibrated truncated
// power law and pins the extremes so the published support [1, kmax] is
// realized exactly: at least one node of degree kmax and one of degree 1.
func SampleDegreeSequence(n int, rng *rand.Rand) ([]int, error) {
	if n < 2 {
		return nil, fmt.Errorf("digg: need n >= 2 nodes, got %d", n)
	}
	gamma, err := CalibrateGamma(PaperMeanDegree, PaperMinDegree, PaperMaxDegree)
	if err != nil {
		return nil, err
	}
	seq, err := graph.PowerLawDegreeSequence(n, gamma, PaperMinDegree, PaperMaxDegree, rng)
	if err != nil {
		return nil, err
	}
	seq[0] = PaperMaxDegree
	seq[1] = PaperMinDegree
	return seq, nil
}

// Generate builds a synthetic Digg2009-scale directed follower graph with
// the published statistics. The graph is a configuration-model realization
// of the calibrated degree sequence, so its out-degree distribution — the
// only input the mean-field model uses — matches the published one.
func Generate(rng *rand.Rand) (*graph.Graph, error) {
	seq, err := SampleDegreeSequence(PaperUsers, rng)
	if err != nil {
		return nil, err
	}
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		return nil, fmt.Errorf("digg: realize degree sequence: %w", err)
	}
	return g, nil
}

// Dist returns the degree distribution of a synthetic Digg2009 network
// without materializing the graph — sufficient (and fast) for the ODE
// experiments, which consume only P(k).
func Dist(rng *rand.Rand) (*degreedist.Dist, error) {
	seq, err := SampleDegreeSequence(PaperUsers, rng)
	if err != nil {
		return nil, err
	}
	d, err := degreedist.FromSequence(seq)
	if err != nil {
		return nil, fmt.Errorf("digg: build distribution: %w", err)
	}
	return d, nil
}

// LoadFriendsCSV parses the original Digg2009 "digg_friends.csv" format:
// one record per line, comma separated, with fields
//
//	mutual, friend_date, user_id, friend_id
//
// A directed edge friend_id → user_id is added (the follower relation:
// a user's votes propagate to those who follow them), plus the reverse edge
// when mutual is 1. Lines starting with '#' or a non-numeric header are
// skipped. Node ids are remapped densely; the mapping is returned.
func LoadFriendsCSV(r io.Reader) (*graph.Graph, []int64, error) {
	type edge struct {
		u, v   int
		mutual bool
	}
	var (
		edges []edge
		ids   []int64
	)
	remap := make(map[int64]int)
	dense := func(raw int64) int {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := len(ids)
		remap[raw] = id
		ids = append(ids, raw)
		return id
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 4 {
			return nil, nil, fmt.Errorf("digg: line %d: want 4 CSV fields, got %d", line, len(fields))
		}
		mutual, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, nil, fmt.Errorf("digg: line %d: bad mutual flag: %w", line, err)
		}
		user, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("digg: line %d: bad user id: %w", line, err)
		}
		friend, err := strconv.ParseInt(strings.TrimSpace(fields[3]), 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("digg: line %d: bad friend id: %w", line, err)
		}
		edges = append(edges, edge{dense(friend), dense(user), mutual == 1})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("digg: scan friends csv: %w", err)
	}

	g := graph.New(len(ids))
	for _, e := range edges {
		// Dense ids are in range by construction.
		_ = g.AddEdge(e.u, e.v)
		if e.mutual {
			_ = g.AddEdge(e.v, e.u)
		}
	}
	return g, ids, nil
}

// fitGamma estimates the out-degree power-law exponent with the
// Clauset–Shalizi–Newman MLE at the kmin where the approximation is
// reliable.
func fitGamma(degs []int) (float64, int, error) {
	return stats.PowerLawFit(degs, 6)
}
