package digg

import (
	"strings"
	"testing"
)

// FuzzLoadFriendsCSV checks the friendship parser never panics and accepted
// inputs produce in-range graphs.
func FuzzLoadFriendsCSV(f *testing.F) {
	f.Add("mutual,friend_date,user_id,friend_id\n1,100,1,2\n")
	f.Add("0,1,2,3\n")
	f.Add("x,y\n")
	f.Add("1,1,-2,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, ids, err := LoadFriendsCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if g.NumNodes() != len(ids) {
			t.Fatalf("nodes %d != ids %d", g.NumNodes(), len(ids))
		}
	})
}

// FuzzLoadVotesCSV checks the vote parser never panics and output stays
// time-sorted.
func FuzzLoadVotesCSV(f *testing.F) {
	f.Add("vote_date,voter_id,story_id\n100,1,2\n50,3,4\n")
	f.Add("1,2\n")
	f.Add("#c\n5,6,7\n")
	f.Fuzz(func(t *testing.T, input string) {
		votes, err := LoadVotesCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		for i := 1; i < len(votes); i++ {
			if votes[i].Time < votes[i-1].Time {
				t.Fatalf("votes not sorted at %d", i)
			}
		}
	})
}
