package digg

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"rumornet/internal/graph"
)

func TestLoadVotesCSV(t *testing.T) {
	in := strings.Join([]string{
		"vote_date,voter_id,story_id", // header
		"300,10,1",
		"100,20,1",
		"# comment",
		"200,30,2",
		"",
	}, "\n")
	votes, err := LoadVotesCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) != 3 {
		t.Fatalf("len = %d, want 3", len(votes))
	}
	// Time-sorted output.
	if votes[0].Time != 100 || votes[1].Time != 200 || votes[2].Time != 300 {
		t.Errorf("votes not time-sorted: %+v", votes)
	}
	if votes[0].Voter != 20 || votes[0].Story != 1 {
		t.Errorf("first vote = %+v", votes[0])
	}
}

func TestLoadVotesCSVErrors(t *testing.T) {
	cases := []string{
		"1,2\n",          // too few fields
		"h,h,h\nx,2,3\n", // bad timestamp past header
		"100,x,3\n",      // bad voter
		"100,2,x\n",      // bad story
	}
	for _, in := range cases {
		if _, err := LoadVotesCSV(strings.NewReader(in)); err == nil {
			t.Errorf("LoadVotesCSV(%q): want error", in)
		}
	}
}

func TestStoryIndex(t *testing.T) {
	votes := []Vote{
		{Time: 1, Voter: 10, Story: 7},
		{Time: 2, Voter: 11, Story: 7},
		{Time: 3, Voter: 12, Story: 9},
		{Time: 4, Voter: 13, Story: 7},
	}
	idx := IndexVotes(votes)
	if len(idx[7]) != 3 || len(idx[9]) != 1 {
		t.Fatalf("index sizes wrong: %v", idx)
	}
	stories := idx.Stories()
	if len(stories) != 2 || stories[0] != 7 {
		t.Errorf("Stories() = %v, want [7 9] (by vote count)", stories)
	}
}

func TestSeedsFromStory(t *testing.T) {
	votes := []Vote{
		{Time: 1, Voter: 100, Story: 1},
		{Time: 2, Voter: 200, Story: 1},
		{Time: 3, Voter: 100, Story: 1}, // duplicate voter
		{Time: 4, Voter: 999, Story: 1}, // not in the graph
		{Time: 5, Voter: 300, Story: 1},
	}
	idx := IndexVotes(votes)
	ids := []int64{100, 200, 300} // dense ids 0, 1, 2
	seeds, err := idx.SeedsFromStory(1, 10, ids)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(seeds) != 3 {
		t.Fatalf("seeds = %v, want %v", seeds, want)
	}
	for i, s := range seeds {
		if s != want[i] {
			t.Errorf("seeds[%d] = %d, want %d (time order, deduped)", i, s, want[i])
		}
	}
	// maxSeeds truncation.
	two, err := idx.SeedsFromStory(1, 2, ids)
	if err != nil || len(two) != 2 {
		t.Errorf("maxSeeds=2: %v, %v", two, err)
	}
	// Errors.
	if _, err := idx.SeedsFromStory(42, 5, ids); !errors.Is(err, ErrUnknownStory) {
		t.Errorf("unknown story error = %v", err)
	}
	if _, err := idx.SeedsFromStory(1, 0, ids); err == nil {
		t.Error("maxSeeds=0: want error")
	}
	if _, err := idx.SeedsFromStory(1, 5, []int64{555}); err == nil {
		t.Error("no voters in graph: want error")
	}
}

func TestSampleVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, err := graph.ErdosRenyi(500, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	votes, err := SampleVotes(g, 5, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(votes) < 5 {
		t.Fatalf("only %d votes from 5 stories", len(votes))
	}
	// Time-sorted, valid ids, all five stories present.
	stories := make(map[int64]bool)
	for i, v := range votes {
		if i > 0 && v.Time < votes[i-1].Time {
			t.Fatalf("votes not sorted at %d", i)
		}
		if v.Voter < 0 || v.Voter >= int64(g.NumNodes()) {
			t.Fatalf("voter %d out of range", v.Voter)
		}
		stories[v.Story] = true
	}
	if len(stories) != 5 {
		t.Errorf("stories = %d, want 5", len(stories))
	}
	// Within a story, voters are unique.
	idx := IndexVotes(votes)
	for s, svotes := range idx {
		seen := make(map[int64]bool)
		for _, v := range svotes {
			if seen[v.Voter] {
				t.Fatalf("story %d: duplicate voter %d", s, v.Voter)
			}
			seen[v.Voter] = true
		}
	}
}

func TestSampleVotesValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := graph.ErdosRenyi(10, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SampleVotes(nil, 1, 0.5, rng); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := SampleVotes(g, 0, 0.5, rng); err == nil {
		t.Error("zero stories: want error")
	}
	if _, err := SampleVotes(g, 1, 0, rng); err == nil {
		t.Error("zero edge prob: want error")
	}
	if _, err := SampleVotes(g, 1, 1.5, rng); err == nil {
		t.Error("edge prob > 1: want error")
	}
	if _, err := SampleVotes(g, 1, 0.5, nil); err == nil {
		t.Error("nil rng: want error")
	}
}

// TestVotesEndToEnd: synthesize traces, round-trip them through the CSV
// format, and seed a cascade from the biggest story.
func TestVotesEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := graph.ErdosRenyi(300, 2400, rng)
	if err != nil {
		t.Fatal(err)
	}
	votes, err := SampleVotes(g, 3, 0.4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize in the dump's format and reload.
	var b strings.Builder
	b.WriteString("vote_date,voter_id,story_id\n")
	for _, v := range votes {
		b.WriteString(strings.Join([]string{
			strconv.FormatInt(v.Time, 10),
			strconv.FormatInt(v.Voter, 10),
			strconv.FormatInt(v.Story, 10),
		}, ","))
		b.WriteByte('\n')
	}
	reloaded, err := LoadVotesCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != len(votes) {
		t.Fatalf("round trip lost votes: %d vs %d", len(reloaded), len(votes))
	}
	idx := IndexVotes(reloaded)
	top := idx.Stories()[0]
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i) // SampleVotes uses dense ids directly
	}
	seeds, err := idx.SeedsFromStory(top, 10, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) == 0 || len(seeds) > 10 {
		t.Errorf("seeds = %v", seeds)
	}
}

// Property: SeedsFromStory never returns duplicates and respects maxSeeds.
func TestQuickSeedsUnique(t *testing.T) {
	f := func(raw []uint8, maxRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		votes := make([]Vote, len(raw))
		ids := []int64{0, 1, 2, 3, 4, 5, 6, 7}
		for i, r := range raw {
			votes[i] = Vote{Time: int64(i), Voter: int64(r % 8), Story: 1}
		}
		idx := IndexVotes(votes)
		maxSeeds := int(maxRaw%8) + 1
		seeds, err := idx.SeedsFromStory(1, maxSeeds, ids)
		if err != nil {
			return false
		}
		if len(seeds) > maxSeeds {
			return false
		}
		seen := make(map[int]bool)
		for _, s := range seeds {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
