package digg

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"rumornet/internal/graph"
)

// The Digg2009 release ships a second file, "digg_votes1.csv", with one
// record per vote: vote_date, voter_id, story_id. The paper simulates on
// parameters derived from the friendship graph alone, but the vote traces
// are what make the dataset famous — each story's early voters are a
// natural, data-driven initial condition for a rumor cascade. This file
// provides the loader, a per-story index, trace-driven seeding, and a
// synthetic trace generator for users without the original dump.

// Vote is a single story vote.
type Vote struct {
	// Time is the vote's unix timestamp (the dump's vote_date).
	Time int64
	// Voter is the raw user id.
	Voter int64
	// Story is the story id.
	Story int64
}

// LoadVotesCSV parses the digg_votes format: comma-separated
// vote_date, voter_id, story_id records, with an optional header row and
// '#' comments. Votes are returned sorted by time.
func LoadVotesCSV(r io.Reader) ([]Vote, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var votes []Vote
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("digg: votes line %d: want 3 fields, got %d", line, len(fields))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("digg: votes line %d: bad timestamp: %w", line, err)
		}
		voter, err := strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("digg: votes line %d: bad voter id: %w", line, err)
		}
		story, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("digg: votes line %d: bad story id: %w", line, err)
		}
		votes = append(votes, Vote{Time: ts, Voter: voter, Story: story})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("digg: scan votes: %w", err)
	}
	sort.Slice(votes, func(i, j int) bool { return votes[i].Time < votes[j].Time })
	return votes, nil
}

// StoryIndex groups votes by story, preserving time order within each.
type StoryIndex map[int64][]Vote

// IndexVotes builds a StoryIndex from a time-sorted vote list.
func IndexVotes(votes []Vote) StoryIndex {
	idx := make(StoryIndex)
	for _, v := range votes {
		idx[v.Story] = append(idx[v.Story], v)
	}
	return idx
}

// Stories returns the story ids sorted by descending vote count (ties by
// id) — the dataset's "front page" ordering.
func (idx StoryIndex) Stories() []int64 {
	out := make([]int64, 0, len(idx))
	for s := range idx {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		ni, nj := len(idx[out[i]]), len(idx[out[j]])
		if ni != nj {
			return ni > nj
		}
		return out[i] < out[j]
	})
	return out
}

// ErrUnknownStory is returned when seeding from a story with no votes.
var ErrUnknownStory = errors.New("digg: story has no votes")

// SeedsFromStory returns the dense node ids of the first maxSeeds voters of
// a story, mapping raw voter ids through ids (the slice returned by the
// graph loaders; voters absent from the graph are skipped). The result is
// the trace-driven infected set at the story's outbreak.
func (idx StoryIndex) SeedsFromStory(story int64, maxSeeds int, ids []int64) ([]int, error) {
	votes := idx[story]
	if len(votes) == 0 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownStory, story)
	}
	if maxSeeds < 1 {
		return nil, fmt.Errorf("digg: maxSeeds = %d must be positive", maxSeeds)
	}
	dense := make(map[int64]int, len(ids))
	for id, raw := range ids {
		dense[raw] = id
	}
	seeds := make([]int, 0, maxSeeds)
	seen := make(map[int]struct{}, maxSeeds)
	for _, v := range votes {
		node, ok := dense[v.Voter]
		if !ok {
			continue
		}
		if _, dup := seen[node]; dup {
			continue
		}
		seen[node] = struct{}{}
		seeds = append(seeds, node)
		if len(seeds) == maxSeeds {
			break
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("digg: no voters of story %d appear in the graph", story)
	}
	return seeds, nil
}

// SampleVotes synthesizes vote traces for nStories by running independent
// cascades on g: each story starts at a random node at a random time and
// spreads along out-edges with the given per-edge probability, voters
// voting in breadth-first order at one-minute increments. The output is
// time-sorted, matching LoadVotesCSV, with raw ids equal to dense ids.
func SampleVotes(g *graph.Graph, nStories int, edgeProb float64, rng *rand.Rand) ([]Vote, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("digg: SampleVotes needs a non-empty graph")
	}
	if nStories < 1 {
		return nil, fmt.Errorf("digg: nStories = %d must be positive", nStories)
	}
	if edgeProb <= 0 || edgeProb > 1 {
		return nil, fmt.Errorf("digg: edgeProb = %g outside (0, 1]", edgeProb)
	}
	if rng == nil {
		return nil, errors.New("digg: SampleVotes needs a rand source")
	}
	var votes []Vote
	visited := make(map[int]struct{})
	for s := 0; s < nStories; s++ {
		clear(visited)
		start := rng.Int63n(1_000_000)
		root := rng.Intn(g.NumNodes())
		queue := []int{root}
		visited[root] = struct{}{}
		tick := int64(0)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			votes = append(votes, Vote{
				Time:  start + tick*60,
				Voter: int64(u),
				Story: int64(s),
			})
			tick++
			for _, v := range g.OutNeighbors(u) {
				if _, ok := visited[v]; ok {
					continue
				}
				if rng.Float64() < edgeProb {
					visited[v] = struct{}{}
					queue = append(queue, v)
				}
			}
		}
	}
	sort.Slice(votes, func(i, j int) bool { return votes[i].Time < votes[j].Time })
	return votes, nil
}
