package degreedist

import (
	"fmt"
	"math"
)

// KFunc maps a node degree to a rate or weight; used for the paper's rumor
// acceptance rate λ(k) and infectivity ω(k).
type KFunc func(k float64) float64

// OmegaConstant returns ω(k) = c: identical infectivity regardless of
// connectivity (Yang et al. 2007, cited as [16]).
func OmegaConstant(c float64) KFunc {
	return func(float64) float64 { return c }
}

// OmegaLinear returns ω(k) = k: infectivity proportional to connectivity
// (Moreno–Pastor-Satorras–Vespignani, cited as [17]).
func OmegaLinear() KFunc {
	return func(k float64) float64 { return k }
}

// OmegaSaturating returns the paper's preferred non-linear infectivity
// ω(k) = k^beta / (1 + k^gamma), which saturates for highly connected
// individuals (cited as [18]; the evaluation uses beta = gamma = 0.5).
func OmegaSaturating(beta, gamma float64) KFunc {
	return func(k float64) float64 {
		return math.Pow(k, beta) / (1 + math.Pow(k, gamma))
	}
}

// LambdaLinear returns the paper's degree-proportional acceptance rate
// λ(k) = max(0, scale·k). Although the prose states 0 < λ(k) < 1, the
// paper's own evaluation sets λ(k_i) = k_i (Section V-A) — a transition
// rate, not a probability — so no upper clamp is applied; scale is the
// calibration knob each experiment uses to pin r0 (see DESIGN.md).
func LambdaLinear(scale float64) KFunc {
	return func(k float64) float64 {
		if v := scale * k; v > 0 {
			return v
		}
		return 0
	}
}

// LambdaLinearCapped returns λ(k) = clamp(scale·k, 0, cap) for callers that
// want the probability interpretation of the acceptance rate.
func LambdaLinearCapped(scale, cap float64) KFunc {
	return func(k float64) float64 {
		v := scale * k
		switch {
		case v < 0:
			return 0
		case v > cap:
			return cap
		default:
			return v
		}
	}
}

// LambdaConstant returns λ(k) = c, the homogeneous acceptance rate used by
// the non-heterogeneous baselines. c must lie in [0, 1].
func LambdaConstant(c float64) (KFunc, error) {
	if c < 0 || c > 1 {
		return nil, fmt.Errorf("degreedist: acceptance rate %g outside [0,1]", c)
	}
	return func(float64) float64 { return c }, nil
}
