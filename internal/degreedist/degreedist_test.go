package degreedist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rumornet/internal/graph"
)

func TestFromSequence(t *testing.T) {
	d, err := FromSequence([]int{1, 1, 2, 3, 3, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 {
		t.Fatalf("N = %d, want 3 (zero-degree dropped)", d.N())
	}
	wantKs := []int{1, 2, 3}
	wantP := []float64{2.0 / 6, 1.0 / 6, 3.0 / 6}
	for i := 0; i < d.N(); i++ {
		if d.Degree(i) != wantKs[i] {
			t.Errorf("Degree(%d) = %d, want %d", i, d.Degree(i), wantKs[i])
		}
		if math.Abs(d.Prob(i)-wantP[i]) > 1e-15 {
			t.Errorf("Prob(%d) = %v, want %v", i, d.Prob(i), wantP[i])
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestFromSequenceErrors(t *testing.T) {
	if _, err := FromSequence([]int{-1}); err == nil {
		t.Error("negative degree: want error")
	}
	if _, err := FromSequence([]int{0, 0}); !errors.Is(err, ErrEmpty) {
		t.Error("all zeros: want ErrEmpty")
	}
	if _, err := FromSequence(nil); !errors.Is(err, ErrEmpty) {
		t.Error("nil: want ErrEmpty")
	}
}

func TestFromGraph(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	d, err := FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	// Out-degrees: 2, 1, 0 → groups {1, 2} with probability 1/2 each.
	if d.N() != 2 || d.Degree(0) != 1 || d.Degree(1) != 2 {
		t.Errorf("groups = %v", d.Degrees())
	}
}

func TestTruncatedPowerLaw(t *testing.T) {
	d, err := TruncatedPowerLaw(2.5, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 100 || d.MinDegree() != 1 || d.MaxDegree() != 100 {
		t.Fatalf("support wrong: N=%d range [%d,%d]", d.N(), d.MinDegree(), d.MaxDegree())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// P must decay: P(1) > P(2) > ... and follow the k^-2.5 ratio.
	ratio := d.Prob(1) / d.Prob(0)
	if math.Abs(ratio-math.Pow(2, -2.5)) > 1e-12 {
		t.Errorf("P(2)/P(1) = %v, want %v", ratio, math.Pow(2, -2.5))
	}
	for _, bad := range []struct {
		gamma      float64
		kmin, kmax int
	}{{0, 1, 5}, {2, 0, 5}, {2, 5, 4}} {
		if _, err := TruncatedPowerLaw(bad.gamma, bad.kmin, bad.kmax); err == nil {
			t.Errorf("TruncatedPowerLaw(%+v): want error", bad)
		}
	}
}

func TestUniform(t *testing.T) {
	d, err := Uniform([]int{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || d.Degree(0) != 1 || d.Degree(2) != 5 {
		t.Errorf("Uniform sorted wrong: %v", d.Degrees())
	}
	if d.Prob(1) != 1.0/3 {
		t.Errorf("Prob = %v, want 1/3", d.Prob(1))
	}
	if _, err := Uniform(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty: want ErrEmpty")
	}
	if _, err := Uniform([]int{1, 1}); err == nil {
		t.Error("duplicate: want error")
	}
	if _, err := Uniform([]int{0}); err == nil {
		t.Error("degree 0: want error")
	}
}

func TestMeanDegreeAndMoment(t *testing.T) {
	d, err := Uniform([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m := d.MeanDegree(); m != 3 {
		t.Errorf("MeanDegree = %v, want 3", m)
	}
	if m := d.Moment(func(k float64) float64 { return k * k }); m != 10 {
		t.Errorf("E[k^2] = %v, want 10", m)
	}
}

func TestTruncate(t *testing.T) {
	d, err := TruncatedPowerLaw(2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := d.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 3 || tr.MaxDegree() != 3 {
		t.Errorf("Truncate: N=%d max=%d", tr.N(), tr.MaxDegree())
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate after Truncate: %v", err)
	}
	// Relative weights preserved.
	if math.Abs(tr.Prob(0)/tr.Prob(1)-d.Prob(0)/d.Prob(1)) > 1e-12 {
		t.Error("Truncate did not preserve relative weights")
	}
	// Truncating beyond the support returns the same distribution.
	same, err := d.Truncate(100)
	if err != nil || same.N() != d.N() {
		t.Errorf("over-truncate: N=%d err=%v", same.N(), err)
	}
	if _, err := d.Truncate(0); err == nil {
		t.Error("maxGroups=0: want error")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d, err := Uniform([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d.p[0] = 0.9 // break the sum
	if err := d.Validate(); err == nil {
		t.Error("corrupted probabilities: want error")
	}
	d2 := &Dist{ks: []int{2, 1}, p: []float64{0.5, 0.5}}
	if err := d2.Validate(); err == nil {
		t.Error("unsorted degrees: want error")
	}
	d3 := &Dist{}
	if err := d3.Validate(); !errors.Is(err, ErrEmpty) {
		t.Error("empty: want ErrEmpty")
	}
}

func TestKFuncs(t *testing.T) {
	if got := OmegaConstant(3)(99); got != 3 {
		t.Errorf("OmegaConstant = %v", got)
	}
	if got := OmegaLinear()(7); got != 7 {
		t.Errorf("OmegaLinear = %v", got)
	}
	// Paper's ω(k) = k^0.5/(1+k^0.5) at k=4: 2/3.
	if got := OmegaSaturating(0.5, 0.5)(4); math.Abs(got-2.0/3) > 1e-15 {
		t.Errorf("OmegaSaturating(4) = %v, want 2/3", got)
	}
	// Saturation: large k approaches 1 (for beta == gamma).
	if got := OmegaSaturating(0.5, 0.5)(1e8); got < 0.99 {
		t.Errorf("OmegaSaturating not saturating: %v", got)
	}

	lam := LambdaLinear(0.01)
	if got := lam(50); got != 0.5 {
		t.Errorf("LambdaLinear(50) = %v, want 0.5", got)
	}
	if got := lam(1000); got != 10 { // no upper clamp: the paper uses λ(k)=k
		t.Errorf("LambdaLinear(1000) = %v, want 10", got)
	}
	if got := LambdaLinear(-1)(5); got != 0 {
		t.Errorf("LambdaLinear clamp low = %v, want 0", got)
	}
	capped := LambdaLinearCapped(0.01, 1)
	if got := capped(1000); got != 1 {
		t.Errorf("LambdaLinearCapped high = %v, want 1", got)
	}
	if got := capped(50); got != 0.5 {
		t.Errorf("LambdaLinearCapped mid = %v, want 0.5", got)
	}
	if got := LambdaLinearCapped(-1, 1)(5); got != 0 {
		t.Errorf("LambdaLinearCapped low = %v, want 0", got)
	}

	lc, err := LambdaConstant(0.3)
	if err != nil || lc(123) != 0.3 {
		t.Errorf("LambdaConstant = %v, %v", lc(123), err)
	}
	if _, err := LambdaConstant(1.5); err == nil {
		t.Error("LambdaConstant(1.5): want error")
	}
}

// Property: every empirical distribution built from a random degree
// sequence validates and has mean within the sequence's [min, max].
func TestQuickFromSequenceValid(t *testing.T) {
	f := func(raw []uint8) bool {
		degrees := make([]int, len(raw))
		nonzero := false
		for i, r := range raw {
			degrees[i] = int(r)
			if r > 0 {
				nonzero = true
			}
		}
		d, err := FromSequence(degrees)
		if !nonzero {
			return errors.Is(err, ErrEmpty) || len(raw) == 0
		}
		if err != nil {
			return false
		}
		if d.Validate() != nil {
			return false
		}
		m := d.MeanDegree()
		return m >= float64(d.MinDegree()) && m <= float64(d.MaxDegree())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the analytic power law's mean decreases as gamma increases.
func TestQuickPowerLawMeanMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g1 := 1.5 + rng.Float64()
		g2 := g1 + 0.1 + rng.Float64()
		d1, err1 := TruncatedPowerLaw(g1, 1, 500)
		d2, err2 := TruncatedPowerLaw(g2, 1, 500)
		if err1 != nil || err2 != nil {
			return false
		}
		return d1.MeanDegree() > d2.MeanDegree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
