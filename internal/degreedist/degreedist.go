// Package degreedist represents the degree-group structure at the heart of
// the paper's heterogeneous SIR model: users are partitioned into n groups
// by social connectivity k_i, with group probabilities P(k_i). It also
// provides the paper's acceptance-rate λ(k) and infectivity ω(k) families
// (Section III, Table I).
package degreedist

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rumornet/internal/graph"
)

// Dist is a discrete degree distribution: sorted distinct degrees Ks (the
// paper's n groups) with probabilities P summing to one. Construct with one
// of the From/TruncatedPowerLaw constructors; the zero value is not usable.
type Dist struct {
	ks []int
	p  []float64
}

// ErrEmpty is returned when a distribution would have no groups.
var ErrEmpty = errors.New("degreedist: empty distribution")

// FromSequence builds the empirical distribution of a degree sequence.
// Degrees must be non-negative; zero-degree nodes are dropped (they cannot
// receive or spread a rumor and do not participate in the mean field).
func FromSequence(degrees []int) (*Dist, error) {
	hist := make(map[int]int)
	total := 0
	for _, k := range degrees {
		if k < 0 {
			return nil, fmt.Errorf("degreedist: negative degree %d", k)
		}
		if k == 0 {
			continue
		}
		hist[k]++
		total++
	}
	if total == 0 {
		return nil, ErrEmpty
	}
	ks := make([]int, 0, len(hist))
	for k := range hist {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	p := make([]float64, len(ks))
	for i, k := range ks {
		p[i] = float64(hist[k]) / float64(total)
	}
	return &Dist{ks: ks, p: p}, nil
}

// FromGraph builds the empirical out-degree distribution of g.
func FromGraph(g *graph.Graph) (*Dist, error) {
	return FromSequence(g.OutDegrees())
}

// TruncatedPowerLaw builds the analytic distribution P(k) ∝ k^-gamma on
// [kmin, kmax].
func TruncatedPowerLaw(gamma float64, kmin, kmax int) (*Dist, error) {
	if kmin < 1 || kmax < kmin {
		return nil, fmt.Errorf("degreedist: invalid range [%d, %d]", kmin, kmax)
	}
	if gamma <= 0 {
		return nil, fmt.Errorf("degreedist: gamma must be positive, got %g", gamma)
	}
	n := kmax - kmin + 1
	ks := make([]int, n)
	p := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		ks[i] = kmin + i
		p[i] = math.Pow(float64(ks[i]), -gamma)
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	return &Dist{ks: ks, p: p}, nil
}

// New builds a distribution from an explicit degree table: distinct degrees
// ks (in any order) with non-negative weights p that are renormalized to sum
// to one. This is the constructor behind uploaded P(k) scenarios in the
// rumord service: operators POST a degree table and get back a first-class
// scenario. Zero-weight groups are dropped (they contribute nothing to the
// mean field).
func New(ks []int, p []float64) (*Dist, error) {
	if len(ks) == 0 {
		return nil, ErrEmpty
	}
	if len(ks) != len(p) {
		return nil, fmt.Errorf("degreedist: %d degrees vs %d probabilities", len(ks), len(p))
	}
	type pair struct {
		k int
		p float64
	}
	pairs := make([]pair, 0, len(ks))
	var total float64
	for i, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("degreedist: degree %d < 1", k)
		}
		if math.IsNaN(p[i]) || math.IsInf(p[i], 0) || p[i] < 0 {
			return nil, fmt.Errorf("degreedist: invalid probability %g for degree %d", p[i], k)
		}
		if p[i] == 0 {
			continue
		}
		pairs = append(pairs, pair{k: k, p: p[i]})
		total += p[i]
	}
	if len(pairs) == 0 || total <= 0 {
		return nil, fmt.Errorf("degreedist: no positive-probability groups: %w", ErrEmpty)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	d := &Dist{ks: make([]int, len(pairs)), p: make([]float64, len(pairs))}
	for i, pr := range pairs {
		if i > 0 && pairs[i-1].k == pr.k {
			return nil, fmt.Errorf("degreedist: duplicate degree %d", pr.k)
		}
		d.ks[i] = pr.k
		d.p[i] = pr.p / total
	}
	return d, nil
}

// Uniform builds the uniform distribution over the given distinct degrees.
func Uniform(ks []int) (*Dist, error) {
	if len(ks) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	for i, k := range sorted {
		if k < 1 {
			return nil, fmt.Errorf("degreedist: degree %d < 1", k)
		}
		if i > 0 && sorted[i-1] == k {
			return nil, fmt.Errorf("degreedist: duplicate degree %d", k)
		}
	}
	p := make([]float64, len(sorted))
	for i := range p {
		p[i] = 1 / float64(len(sorted))
	}
	return &Dist{ks: sorted, p: p}, nil
}

// N returns the number of degree groups (the paper's n).
func (d *Dist) N() int { return len(d.ks) }

// Degree returns the degree k_i of group i.
func (d *Dist) Degree(i int) int { return d.ks[i] }

// Prob returns P(k_i) of group i.
func (d *Dist) Prob(i int) float64 { return d.p[i] }

// Degrees returns a copy of the sorted distinct degrees.
func (d *Dist) Degrees() []int { return append([]int(nil), d.ks...) }

// Probs returns a copy of the group probabilities.
func (d *Dist) Probs() []float64 { return append([]float64(nil), d.p...) }

// MeanDegree returns ⟨k⟩ = Σ k_i P(k_i).
func (d *Dist) MeanDegree() float64 {
	var m float64
	for i, k := range d.ks {
		m += float64(k) * d.p[i]
	}
	return m
}

// Moment returns E[f(k)] = Σ f(k_i) P(k_i).
func (d *Dist) Moment(f func(k float64) float64) float64 {
	var m float64
	for i, k := range d.ks {
		m += f(float64(k)) * d.p[i]
	}
	return m
}

// MaxDegree returns the largest degree in the support.
func (d *Dist) MaxDegree() int { return d.ks[len(d.ks)-1] }

// MinDegree returns the smallest degree in the support.
func (d *Dist) MinDegree() int { return d.ks[0] }

// Truncate returns a new distribution keeping only the first maxGroups
// lowest-degree groups, renormalized. It returns the receiver if it already
// has at most maxGroups groups. The paper's Fig. 3 uses the 20 lowest
// groups of the Digg distribution.
func (d *Dist) Truncate(maxGroups int) (*Dist, error) {
	if maxGroups < 1 {
		return nil, fmt.Errorf("degreedist: Truncate needs maxGroups >= 1, got %d", maxGroups)
	}
	if maxGroups >= len(d.ks) {
		return d, nil
	}
	ks := append([]int(nil), d.ks[:maxGroups]...)
	p := append([]float64(nil), d.p[:maxGroups]...)
	var total float64
	for _, v := range p {
		total += v
	}
	if total <= 0 {
		return nil, ErrEmpty
	}
	for i := range p {
		p[i] /= total
	}
	return &Dist{ks: ks, p: p}, nil
}

// Validate checks the structural invariants: sorted distinct degrees ≥ 1
// and probabilities in (0, 1] summing to 1 within tolerance.
func (d *Dist) Validate() error {
	if len(d.ks) == 0 {
		return ErrEmpty
	}
	if len(d.ks) != len(d.p) {
		return fmt.Errorf("degreedist: %d degrees vs %d probabilities", len(d.ks), len(d.p))
	}
	var total float64
	for i, k := range d.ks {
		if k < 1 {
			return fmt.Errorf("degreedist: degree %d < 1 at group %d", k, i)
		}
		if i > 0 && d.ks[i-1] >= k {
			return fmt.Errorf("degreedist: degrees not strictly increasing at group %d", i)
		}
		if d.p[i] <= 0 || d.p[i] > 1 {
			return fmt.Errorf("degreedist: probability %g out of (0,1] at group %d", d.p[i], i)
		}
		total += d.p[i]
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("degreedist: probabilities sum to %g, want 1", total)
	}
	return nil
}
