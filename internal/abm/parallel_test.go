package abm

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"rumornet/internal/graph"
)

// TestRunWorkerInvariance is the determinism regression for the sharded
// sweep: the sampled trajectory must be bit-identical for every worker
// count, in both contact modes, with and without blocking.
func TestRunWorkerInvariance(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []Mode{ModeAnnealed, ModeQuenched} {
		cfg := testConfig(mode)
		cfg.Steps = 40
		blocked, err := g.TopKByOutDegree(200)
		if err != nil {
			t.Fatal(err)
		}
		for _, withBlocked := range []bool{false, true} {
			cfg.Blocked = nil
			if withBlocked {
				cfg.Blocked = blocked
			}
			var want *Result
			for _, workers := range []int{1, 3, 8} {
				cfg.Workers = workers
				got, err := Run(g, cfg, rand.New(rand.NewSource(42)))
				if err != nil {
					t.Fatalf("mode=%d workers=%d: %v", mode, workers, err)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("mode=%d blocked=%v: workers=%d trajectory diverges from workers=1",
						mode, withBlocked, workers)
				}
			}
		}
	}
}

// TestMeanRunWorkerInvariance: concurrent trials must average to the exact
// serial result.
func TestMeanRunWorkerInvariance(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 30
	cfg.Workers = 1
	want, err := MeanRun(g, cfg, 4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	got, err := MeanRun(g, cfg, 4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("MeanRun workers=8 diverges from workers=1")
	}
}

// TestPairedRuns: runs that differ only in their Blocked set share every
// per-node draw, so a node untouched by the epidemic in both runs follows
// the same fate — the property the targeting ablation's paired comparison
// relies on.
func TestPairedRuns(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 20
	base, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Blocked = []int{0} // one node: trajectories must stay almost identical
	one, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for j := range base.I {
		if d := base.I[j] - one.I[j]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	// Unpaired streams would decorrelate the runs entirely; paired draws
	// bound the gap by the single blocked node's sphere of influence.
	if worst > 0.02 {
		t.Errorf("blocking one node moved I(t) by %v: draws not paired", worst)
	}
}

func TestMeanRunTrialMismatch(t *testing.T) {
	if !errors.Is(ErrTrialMismatch, ErrTrialMismatch) {
		t.Fatal("sentinel must match itself")
	}
	// The guard cannot trigger through the public API (all trials share
	// cfg.Steps), so exercise the error path directly.
	runs := []*Result{
		{T: []float64{0, 1}, S: []float64{1, 1}, I: []float64{0, 0}, R: []float64{0, 0}, Theta: []float64{0, 0}},
		{T: []float64{0}, S: []float64{1}, I: []float64{0}, R: []float64{0}, Theta: []float64{0}},
	}
	if err := checkTrialAlignment(runs); !errors.Is(err, ErrTrialMismatch) {
		t.Errorf("misaligned trials: err = %v, want ErrTrialMismatch", err)
	}
}

func TestTransitionRandRange(t *testing.T) {
	var sum float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		u := transitionRand(12345, i%97, i)
		if u < 0 || u >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, u)
		}
		sum += u
	}
	if mean := sum / draws; mean < 0.49 || mean > 0.51 {
		t.Errorf("mean of %d draws = %v, want ≈ 0.5", draws, mean)
	}
}

func benchmarkRun(b *testing.B, workers, steps int) {
	g := testGraph(b)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = steps
	cfg.Workers = workers
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABMQuenchedStep times the quenched transition sweep (the Digg
// cross-validation hot path) serial vs parallel.
func BenchmarkABMQuenchedStep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkRun(b, 1, 50) })
	b.Run("parallel", func(b *testing.B) { benchmarkRun(b, 0, 50) })
}

func benchmarkMeanRun(b *testing.B, workers int) {
	g := testGraph(b)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 30
	cfg.Workers = workers
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeanRun(g, cfg, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeanRun times the Monte-Carlo trial fan-out serial vs parallel.
func BenchmarkMeanRun(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkMeanRun(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkMeanRun(b, 0) })
}

// referenceRun is the pre-refactor transition sweep, kept verbatim as the
// golden reference for the degree-bucketed path: one serial pass in node
// order, per-node λ/ω lookups and exp() calls, deltas accumulated inline.
// Run must reproduce it byte for byte — the bucketed visit order may not
// change a single draw, branch outcome, or the Θ summation order.
func referenceRun(t testing.TB, g *graph.Graph, cfg Config, rng *rand.Rand) *Result {
	t.Helper()
	n := g.NumNodes()
	nf := float64(n)

	lambda := make([]float64, n)
	omegaNode := make([]float64, n)
	omegaOverDeg := make([]float64, n)
	var meanK float64
	for u := 0; u < n; u++ {
		k := float64(g.OutDegree(u))
		meanK += k
		lambda[u] = cfg.Lambda(k)
		om := cfg.Omega(k)
		if k > 0 {
			omegaOverDeg[u] = om / k
		}
		omegaNode[u] = om
	}
	meanK /= nf

	state := make([]State, n)
	for u := range state {
		state[u] = Susceptible
	}
	for _, u := range cfg.Blocked {
		state[u] = Recovered
	}
	seeded := 0
	if len(cfg.Seeds) > 0 {
		for _, u := range cfg.Seeds {
			if state[u] == Recovered {
				continue
			}
			if state[u] != Infected {
				state[u] = Infected
				seeded++
			}
		}
	} else {
		seeds := int(math.Round(cfg.I0 * nf))
		if seeds < 1 {
			seeds = 1
		}
		for _, u := range rng.Perm(n) {
			if seeded == seeds {
				break
			}
			if state[u] == Recovered {
				continue
			}
			state[u] = Infected
			seeded++
		}
	}
	baseSeed := rng.Uint64()

	res := &Result{
		T:     make([]float64, 0, cfg.Steps+1),
		S:     make([]float64, 0, cfg.Steps+1),
		I:     make([]float64, 0, cfg.Steps+1),
		R:     make([]float64, 0, cfg.Steps+1),
		Theta: make([]float64, 0, cfg.Steps+1),
	}
	pRec1 := 1 - math.Exp(-cfg.Eps1*cfg.Dt)
	pRec2 := 1 - math.Exp(-cfg.Eps2*cfg.Dt)
	next := make([]State, n)

	var sCnt, iCnt, rCnt int
	var thetaSum float64
	for u, st := range state {
		switch st {
		case Susceptible:
			sCnt++
		case Infected:
			iCnt++
			thetaSum += omegaNode[u]
		case Recovered:
			rCnt++
		}
	}
	record := func(tt float64) {
		res.T = append(res.T, tt)
		res.S = append(res.S, float64(sCnt)/nf)
		res.I = append(res.I, float64(iCnt)/nf)
		res.R = append(res.R, float64(rCnt)/nf)
		res.Theta = append(res.Theta, thetaSum/(nf*meanK))
	}
	record(0)

	type delta struct {
		dS, dI, dR int
		dTheta     float64
	}
	numShards := (n + shardSize - 1) / shardSize
	deltas := make([]delta, numShards)

	for step := 1; step <= cfg.Steps; step++ {
		var theta float64
		if cfg.Mode == ModeAnnealed {
			theta = thetaSum / (nf * meanK)
		}
		for shard := 0; shard < numShards; shard++ {
			lo := shard * shardSize
			hi := min(lo+shardSize, n)
			var d delta
			for v := lo; v < hi; v++ {
				st := state[v]
				next[v] = st
				switch st {
				case Susceptible:
					var force float64
					if cfg.Mode == ModeAnnealed {
						force = lambda[v] * theta
					} else {
						var local float64
						for _, u := range g.InNeighbors(v) {
							if state[u] == Infected {
								local += omegaOverDeg[u]
							}
						}
						force = lambda[v] * local / meanK
					}
					pInf := 1 - math.Exp(-force*cfg.Dt)
					switch u := transitionRand(baseSeed, step, v); {
					case u < pInf:
						next[v] = Infected
						d.dS--
						d.dI++
						d.dTheta += omegaNode[v]
					case u < pInf+(1-pInf)*pRec1:
						next[v] = Recovered
						d.dS--
						d.dR++
					}
				case Infected:
					if transitionRand(baseSeed, step, v) < pRec2 {
						next[v] = Recovered
						d.dI--
						d.dR++
						d.dTheta -= omegaNode[v]
					}
				}
			}
			deltas[shard] = d
		}
		for s := range deltas {
			sCnt += deltas[s].dS
			iCnt += deltas[s].dI
			rCnt += deltas[s].dR
			thetaSum += deltas[s].dTheta
			deltas[s] = delta{}
		}
		state, next = next, state
		record(float64(step) * cfg.Dt)
	}
	return res
}

// TestBucketedSweepMatchesReference is the golden equivalence regression
// for the degree-bucketed sweep: same graph, same seeds → byte-equal
// trajectories against the pre-refactor per-node path, in both contact
// modes, with and without a blocked set, at every worker count.
func TestBucketedSweepMatchesReference(t *testing.T) {
	g := testGraph(t)
	blocked, err := g.TopKByOutDegree(150)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeAnnealed, ModeQuenched} {
		cfg := testConfig(mode)
		cfg.Steps = 40
		for _, withBlocked := range []bool{false, true} {
			cfg.Blocked = nil
			if withBlocked {
				cfg.Blocked = blocked
			}
			want := referenceRun(t, g, cfg, rand.New(rand.NewSource(314)))
			for _, workers := range []int{1, 4} {
				cfg.Workers = workers
				got, err := Run(g, cfg, rand.New(rand.NewSource(314)))
				if err != nil {
					t.Fatalf("mode=%d workers=%d: %v", mode, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("mode=%d blocked=%v workers=%d: bucketed trajectory diverges from the pre-refactor reference",
						mode, withBlocked, workers)
				}
			}
		}
	}
}
