package abm

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestRunWorkerInvariance is the determinism regression for the sharded
// sweep: the sampled trajectory must be bit-identical for every worker
// count, in both contact modes, with and without blocking.
func TestRunWorkerInvariance(t *testing.T) {
	g := testGraph(t)
	for _, mode := range []Mode{ModeAnnealed, ModeQuenched} {
		cfg := testConfig(mode)
		cfg.Steps = 40
		blocked, err := g.TopKByOutDegree(200)
		if err != nil {
			t.Fatal(err)
		}
		for _, withBlocked := range []bool{false, true} {
			cfg.Blocked = nil
			if withBlocked {
				cfg.Blocked = blocked
			}
			var want *Result
			for _, workers := range []int{1, 3, 8} {
				cfg.Workers = workers
				got, err := Run(g, cfg, rand.New(rand.NewSource(42)))
				if err != nil {
					t.Fatalf("mode=%d workers=%d: %v", mode, workers, err)
				}
				if want == nil {
					want = got
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("mode=%d blocked=%v: workers=%d trajectory diverges from workers=1",
						mode, withBlocked, workers)
				}
			}
		}
	}
}

// TestMeanRunWorkerInvariance: concurrent trials must average to the exact
// serial result.
func TestMeanRunWorkerInvariance(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 30
	cfg.Workers = 1
	want, err := MeanRun(g, cfg, 4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	got, err := MeanRun(g, cfg, 4, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("MeanRun workers=8 diverges from workers=1")
	}
}

// TestPairedRuns: runs that differ only in their Blocked set share every
// per-node draw, so a node untouched by the epidemic in both runs follows
// the same fate — the property the targeting ablation's paired comparison
// relies on.
func TestPairedRuns(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 20
	base, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Blocked = []int{0} // one node: trajectories must stay almost identical
	one, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for j := range base.I {
		if d := base.I[j] - one.I[j]; d > worst {
			worst = d
		} else if -d > worst {
			worst = -d
		}
	}
	// Unpaired streams would decorrelate the runs entirely; paired draws
	// bound the gap by the single blocked node's sphere of influence.
	if worst > 0.02 {
		t.Errorf("blocking one node moved I(t) by %v: draws not paired", worst)
	}
}

func TestMeanRunTrialMismatch(t *testing.T) {
	if !errors.Is(ErrTrialMismatch, ErrTrialMismatch) {
		t.Fatal("sentinel must match itself")
	}
	// The guard cannot trigger through the public API (all trials share
	// cfg.Steps), so exercise the error path directly.
	runs := []*Result{
		{T: []float64{0, 1}, S: []float64{1, 1}, I: []float64{0, 0}, R: []float64{0, 0}, Theta: []float64{0, 0}},
		{T: []float64{0}, S: []float64{1}, I: []float64{0}, R: []float64{0}, Theta: []float64{0}},
	}
	if err := checkTrialAlignment(runs); !errors.Is(err, ErrTrialMismatch) {
		t.Errorf("misaligned trials: err = %v, want ErrTrialMismatch", err)
	}
}

func TestTransitionRandRange(t *testing.T) {
	var sum float64
	const draws = 200000
	for i := 0; i < draws; i++ {
		u := transitionRand(12345, i%97, i)
		if u < 0 || u >= 1 {
			t.Fatalf("draw %d out of [0,1): %v", i, u)
		}
		sum += u
	}
	if mean := sum / draws; mean < 0.49 || mean > 0.51 {
		t.Errorf("mean of %d draws = %v, want ≈ 0.5", draws, mean)
	}
}

func benchmarkRun(b *testing.B, workers, steps int) {
	g := testGraph(b)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = steps
	cfg.Workers = workers
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkABMQuenchedStep times the quenched transition sweep (the Digg
// cross-validation hot path) serial vs parallel.
func BenchmarkABMQuenchedStep(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkRun(b, 1, 50) })
	b.Run("parallel", func(b *testing.B) { benchmarkRun(b, 0, 50) })
}

func benchmarkMeanRun(b *testing.B, workers int) {
	g := testGraph(b)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 30
	cfg.Workers = workers
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeanRun(g, cfg, 4, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeanRun times the Monte-Carlo trial fan-out serial vs parallel.
func BenchmarkMeanRun(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchmarkMeanRun(b, 1) })
	b.Run("parallel", func(b *testing.B) { benchmarkMeanRun(b, 0) })
}
