package abm

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func TestRunCtxCancelled(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, g, testConfig(ModeQuenched), rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx with cancelled ctx: %v, want context.Canceled", err)
	}
}

func TestMeanRunCtxCancelled(t *testing.T) {
	g := testGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := testConfig(ModeQuenched)
	cfg.Workers = 2
	_, err := MeanRunCtx(ctx, g, cfg, 4, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MeanRunCtx with cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestRunBackgroundMatchesRunCtx pins that the ctx plumbing did not change
// the sampled trajectories: Run and RunCtx(background) are bit-identical.
func TestRunBackgroundMatchesRunCtx(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	a, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.I) != len(b.I) {
		t.Fatalf("length mismatch: %d vs %d", len(a.I), len(b.I))
	}
	for i := range a.I {
		if a.I[i] != b.I[i] {
			t.Fatalf("trajectory diverged at step %d: %g vs %g", i, a.I[i], b.I[i])
		}
	}
}
