package abm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
)

// testGraph builds a 10k-node configuration-model graph with a power-law
// out-degree sequence on [1, 20].
func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	seq, err := graph.PowerLawDegreeSequence(10000, 1.8, 1, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testConfig(mode Mode) Config {
	return Config{
		Lambda: degreedist.LambdaLinear(0.02),
		Omega:  degreedist.OmegaSaturating(0.5, 0.5),
		Eps1:   0.005,
		Eps2:   0.05,
		I0:     0.05,
		Dt:     0.5,
		Steps:  100,
		Mode:   mode,
	}
}

func TestConfigValidation(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(1))
	good := testConfig(ModeAnnealed)
	if _, err := Run(g, good, rng); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil lambda", func(c *Config) { c.Lambda = nil }},
		{"nil omega", func(c *Config) { c.Omega = nil }},
		{"negative eps1", func(c *Config) { c.Eps1 = -1 }},
		{"bad I0 low", func(c *Config) { c.I0 = 0 }},
		{"bad I0 high", func(c *Config) { c.I0 = 1 }},
		{"bad dt", func(c *Config) { c.Dt = 0 }},
		{"bad steps", func(c *Config) { c.Steps = 0 }},
		{"bad mode", func(c *Config) { c.Mode = 0 }},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			c := good
			tt.mutate(&c)
			if _, err := Run(g, c, rng); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := Run(nil, good, rng); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := Run(g, good, nil); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := Run(graph.New(0), good, rng); err == nil {
		t.Error("empty graph: want error")
	}
}

func TestFractionsSumToOne(t *testing.T) {
	g := testGraph(t)
	res, err := Run(g, testConfig(ModeQuenched), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.T {
		sum := res.S[j] + res.I[j] + res.R[j]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sample %d: S+I+R = %v", j, sum)
		}
	}
	if res.T[0] != 0 || res.I[0] < 0.04 || res.I[0] > 0.06 {
		t.Errorf("initial sample wrong: t=%v I=%v", res.T[0], res.I[0])
	}
}

func TestRecoveredMonotone(t *testing.T) {
	g := testGraph(t)
	res, err := Run(g, testConfig(ModeAnnealed), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(res.R); j++ {
		if res.R[j] < res.R[j-1]-1e-12 {
			t.Fatalf("R decreased at sample %d: %v → %v", j, res.R[j-1], res.R[j])
		}
	}
}

func TestStrongBlockingExtinguishes(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Eps2 = 2.0 // block aggressively
	res, err := Run(g, cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalI() > 0.001 {
		t.Errorf("final infected fraction %v despite aggressive blocking", res.FinalI())
	}
}

// TestAnnealedMatchesODE is the mean-field validation: the annealed
// agent-based process must track the ODE's population-weighted infected
// fraction.
func TestAnnealedMatchesODE(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeAnnealed)

	dist, err := degreedist.FromGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModel(dist, core.Params{
		Alpha:  0, // the agent population is closed
		Eps1:   cfg.Eps1,
		Eps2:   cfg.Eps2,
		Lambda: cfg.Lambda,
		Omega:  cfg.Omega,
	})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.UniformIC(cfg.I0)
	if err != nil {
		t.Fatal(err)
	}
	tf := cfg.Dt * float64(cfg.Steps)
	tr, err := m.Simulate(ic, tf, &core.SimOptions{Step: 0.05})
	if err != nil {
		t.Fatal(err)
	}

	res, err := MeanRun(g, cfg, 5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	// Zero-degree nodes participate in the ABM but are dropped from the
	// degree distribution; their fraction is tiny at these parameters.
	var worst float64
	for j, tj := range res.T {
		// Locate the matching ODE sample by interpolation.
		y := tr.At(tj)
		var odeAt float64
		for i := 0; i < m.N(); i++ {
			odeAt += m.Dist().Prob(i) * m.I(y, i)
		}
		if d := math.Abs(odeAt - res.I[j]); d > worst {
			worst = d
		}
	}
	if worst > 0.02 {
		t.Errorf("max |ODE − ABM| infected fraction = %v, want ≤ 0.02", worst)
	}
}

// TestQuenchedBelowAnnealed: on a sparse quenched network the epidemic
// cannot exceed its annealed (fully mixed) counterpart by much; typically
// local depletion of susceptibles slows it down.
func TestQuenchedCloseToAnnealed(t *testing.T) {
	g := testGraph(t)
	ann, err := MeanRun(g, testConfig(ModeAnnealed), 3, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	que, err := MeanRun(g, testConfig(ModeQuenched), 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ann.PeakI()-que.PeakI()) > 0.15 {
		t.Errorf("annealed peak %v vs quenched peak %v: unexpectedly far apart",
			ann.PeakI(), que.PeakI())
	}
}

func TestMeanRunValidation(t *testing.T) {
	g := testGraph(t)
	if _, err := MeanRun(g, testConfig(ModeAnnealed), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero trials: want error")
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{T: []float64{0, 1}, S: []float64{0.9, 0.5}, I: []float64{0.1, 0.4}, R: []float64{0, 0.1}}
	if r.FinalI() != 0.4 {
		t.Errorf("FinalI = %v", r.FinalI())
	}
	if r.PeakI() != 0.4 {
		t.Errorf("PeakI = %v", r.PeakI())
	}
}

// Property: across random seeds, compartment fractions remain in [0, 1] and
// conserve mass.
func TestQuickMassConservation(t *testing.T) {
	g := testGraph(t)
	f := func(seed int64, quenched bool) bool {
		mode := ModeAnnealed
		if quenched {
			mode = ModeQuenched
		}
		cfg := testConfig(mode)
		cfg.Steps = 20
		res, err := Run(g, cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for j := range res.T {
			if res.S[j] < 0 || res.S[j] > 1 || res.I[j] < 0 || res.I[j] > 1 || res.R[j] < 0 || res.R[j] > 1 {
				return false
			}
			if math.Abs(res.S[j]+res.I[j]+res.R[j]-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRunQuenched(b *testing.B) {
	g := testGraph(b)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 50
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBlockedNodesStayRecovered(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	blocked, err := g.TopKByOutDegree(500)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Blocked = blocked
	res, err := Run(g, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Blocked users count as recovered from the start.
	if res.R[0] < float64(len(blocked))/float64(g.NumNodes())-1e-9 {
		t.Errorf("initial R = %v, want at least the blocked fraction %v",
			res.R[0], float64(len(blocked))/float64(g.NumNodes()))
	}
}

func TestBlockedHubsSuppressOutbreak(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Lambda = degreedist.LambdaLinear(0.15) // strongly supercritical
	cfg.Eps1 = 0.0005
	cfg.Eps2 = 0.02
	base, err := MeanRun(g, cfg, 3, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	hubs, err := g.TopKByOutDegree(g.NumNodes() / 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Blocked = hubs
	targeted, err := MeanRun(g, cfg, 3, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if targeted.PeakI() >= base.PeakI() {
		t.Errorf("hub blocking peak %v not below baseline %v", targeted.PeakI(), base.PeakI())
	}
}

func TestBlockedValidation(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeAnnealed)
	cfg.Blocked = []int{-1}
	if _, err := Run(g, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("out-of-range blocked node: want error")
	}
	// Block everyone: nothing to seed.
	small := graph.New(3)
	for u := 0; u < 3; u++ {
		if err := small.AddEdge(u, (u+1)%3); err != nil {
			t.Fatal(err)
		}
	}
	cfg = testConfig(ModeAnnealed)
	cfg.Blocked = []int{0, 1, 2}
	if _, err := Run(small, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("all blocked: want error")
	}
}

func TestExplicitSeeds(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Seeds = []int{0, 1, 2, 1} // duplicate is harmless
	res, err := Run(g, cfg, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0 / float64(g.NumNodes())
	if math.Abs(res.I[0]-want) > 1e-12 {
		t.Errorf("initial I = %v, want exactly %v (3 explicit seeds)", res.I[0], want)
	}
}

func TestExplicitSeedsValidation(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeQuenched)
	cfg.Seeds = []int{-5}
	if _, err := Run(g, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("out-of-range seed: want error")
	}
	// Every seed blocked → nothing to seed.
	cfg = testConfig(ModeQuenched)
	cfg.Seeds = []int{0}
	cfg.Blocked = []int{0}
	if _, err := Run(g, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("all seeds blocked: want error")
	}
}
