// Package abm cross-validates the mean-field ODE model with an agent-based
// Monte-Carlo SIR simulation on an explicit social graph.
//
// Two contact modes are provided:
//
//   - ModeAnnealed reproduces the mean-field assumption exactly: every
//     susceptible agent feels the global infectivity Θ(t); the ODE system
//     is the N → ∞ limit of this process, so trajectories must agree.
//   - ModeQuenched uses the actual graph edges: agent v is pressured only
//     by its infected in-neighbors, with per-edge weight ω(k_u)/outdeg(u)
//     chosen so that the expected force over a configuration-model graph
//     equals the mean-field force λ(k_v)·Θ (see DESIGN.md). Differences
//     from the ODE quantify the quenched-network correction the paper's
//     model ignores.
//
// The per-step transition sweep is sharded across worker goroutines
// (Config.Workers). Every Monte-Carlo transition draw comes from a
// counter-based generator keyed by (run seed, step, node) rather than a
// shared sequential stream, so a run's output is bit-identical for every
// worker count — and runs that differ only in their Blocked set stay
// perfectly paired, node by node. See DESIGN.md, "Concurrency &
// determinism".
package abm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sync/atomic"
	"time"

	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
	"rumornet/internal/obs"
	"rumornet/internal/par"
)

// Mode selects the contact structure.
type Mode int

// Modes.
const (
	ModeAnnealed Mode = iota + 1
	ModeQuenched
)

// State is an agent's compartment.
type State uint8

// Agent states.
const (
	Susceptible State = iota + 1
	Infected
	Recovered
)

// Config parameterizes a simulation run.
type Config struct {
	// Lambda and Omega are the acceptance and infectivity functions of the
	// mean-field model (evaluated on out-degrees).
	Lambda, Omega degreedist.KFunc
	// Eps1 and Eps2 are the immunization and blocking rates.
	Eps1, Eps2 float64
	// I0 is the initial infected fraction (seeded uniformly at random).
	I0 float64
	// Dt is the time step; transition probabilities are 1 − exp(−rate·Dt).
	Dt float64
	// Steps is the number of time steps.
	Steps int
	// Mode selects annealed (mean-field) or quenched (graph-edge) contact.
	Mode Mode
	// Blocked lists nodes recovered at t = 0 before the rumor starts — the
	// "block rumors at influential users" countermeasure of the paper's
	// introduction. Blocked nodes are never seeded and never infected.
	// Nodes out of range cause an error.
	Blocked []int
	// Seeds, when non-empty, is the explicit set of initially infected
	// nodes (e.g. the early voters of a Digg story) and overrides the
	// random I0 seeding. Blocked nodes among the seeds are skipped.
	Seeds []int
	// Workers bounds the goroutines used for the per-step transition sweep
	// (and, in MeanRun, the concurrent trials). Zero or negative selects
	// runtime.NumCPU(); 1 runs fully serial. The sampled trajectory is
	// bit-identical for every value.
	Workers int
	// Progress, if non-nil, receives StageABM checkpoints every
	// ProgressEvery steps: steps done, total, simulated time, the infected
	// fraction (Value) and the wall time of that step's transition sweep
	// (Elapsed). MeanRun additionally emits one StageABMTrials event per
	// completed trial and forwards per-step checkpoints only for a single
	// trial, so concurrent trials never interleave step streams. The
	// callback may run from worker goroutines and must be concurrency-safe
	// and cheap; it never changes the sampled trajectory.
	Progress obs.Progress
	// ProgressEvery is the step cadence of Progress (default 16 — ABM steps
	// sweep the whole graph, so they are orders of magnitude heavier than
	// ODE steps).
	ProgressEvery int
}

func (c Config) validate() error {
	switch {
	case c.Lambda == nil || c.Omega == nil:
		return errors.New("abm: Lambda and Omega are required")
	case c.Eps1 < 0 || c.Eps2 < 0:
		return fmt.Errorf("abm: negative countermeasure rates (%g, %g)", c.Eps1, c.Eps2)
	case c.I0 <= 0 || c.I0 >= 1:
		return fmt.Errorf("abm: I0 = %g outside (0, 1)", c.I0)
	case c.Dt <= 0:
		return fmt.Errorf("abm: Dt = %g must be positive", c.Dt)
	case c.Steps < 1:
		return fmt.Errorf("abm: Steps = %d must be positive", c.Steps)
	case c.Mode != ModeAnnealed && c.Mode != ModeQuenched:
		return fmt.Errorf("abm: unknown mode %d", int(c.Mode))
	}
	return nil
}

// Result holds the sampled fractions of each compartment over time.
type Result struct {
	// T[j] is the time of sample j (T[0] = 0).
	T []float64
	// S, I, R are the population fractions at each sample.
	S, I, R []float64
	// Theta is the realized average infectivity at each sample.
	Theta []float64
}

// FinalI returns the final infected fraction.
func (r *Result) FinalI() float64 { return r.I[len(r.I)-1] }

// PeakI returns the maximum infected fraction over the run.
func (r *Result) PeakI() float64 {
	var m float64
	for _, v := range r.I {
		if v > m {
			m = v
		}
	}
	return m
}

// shardSize is the fixed number of nodes per transition-sweep shard. It
// depends only on this constant — never on the worker count — so per-shard
// Θ deltas summed in shard order are bit-identical at any parallelism.
const shardSize = 2048

// sweepPlan is the precomputed per-run geometry of the transition sweep:
// a degree-bucketed visit order per shard for the annealed draw phase, and
// CSR in-adjacency for the quenched force evaluation.
//
// The plan depends only on the graph, never on the worker count or the RNG,
// so it cannot perturb the deterministic trajectory. Determinism of the
// *values* is preserved separately: the draw phase may visit nodes in any
// order (each node's transition is a pure function of (seed, step, node)
// plus the frozen state array), and the Θ delta is accumulated in a
// second, node-ordered pass so its floating-point summation order is
// exactly that of the pre-bucketing sweep. See DESIGN.md §11.
type sweepPlan struct {
	// deg[v] is the out-degree of v — the argument of λ and ω, shared by
	// every node of a bucket.
	deg []int32
	// order holds, shard by shard, the shard's nodes sorted by (degree,
	// id). Consecutive equal-degree nodes form a bucket: they share the
	// λ(k) lookup and one 1−exp(−λ(k)Θ·Δt) infection probability, so the
	// annealed sweep pays one exp per (bucket, step) instead of one per
	// (node, step). Built only for ModeAnnealed: the quenched force is
	// per-node anyway, and there the node-ordered walk's adjacency
	// locality is worth more than a shared λ register.
	order []int32
	// inOff/inAdj are the CSR in-adjacency: the in-neighbors of v are
	// inAdj[inOff[v]:inOff[v+1]], in the same order as graph.InNeighbors —
	// one flat array streamed in node order instead of a per-node slice
	// chase. Built only for ModeQuenched.
	inOff []int32
	inAdj []int32
}

func newSweepPlan(g *graph.Graph, mode Mode) *sweepPlan {
	n := g.NumNodes()
	p := &sweepPlan{deg: make([]int32, n)}
	for v := 0; v < n; v++ {
		p.deg[v] = int32(g.OutDegree(v))
	}
	if mode == ModeAnnealed {
		p.order = make([]int32, n)
		for v := range p.order {
			p.order[v] = int32(v)
		}
		for lo := 0; lo < n; lo += shardSize {
			hi := min(lo+shardSize, n)
			seg := p.order[lo:hi]
			sort.Slice(seg, func(a, b int) bool {
				da, db := p.deg[seg[a]], p.deg[seg[b]]
				if da != db {
					return da < db
				}
				return seg[a] < seg[b]
			})
		}
	}
	if mode == ModeQuenched {
		p.inOff = make([]int32, n+1)
		var m int
		for v := 0; v < n; v++ {
			m += len(g.InNeighbors(v))
			p.inOff[v+1] = int32(m)
		}
		p.inAdj = make([]int32, m)
		for v := 0; v < n; v++ {
			at := p.inOff[v]
			for _, u := range g.InNeighbors(v) {
				p.inAdj[at] = int32(u)
				at++
			}
		}
	}
	return p
}

// splitmix64 is the SplitMix64 output mixer (Steele, Lea & Flood 2014): a
// bijective avalanche function whose sequential stream passes BigCrush.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// transitionRand returns the uniform [0, 1) variate for node's transition
// at step, as a pure function of (base, step, node). Keying per node (not
// per shard) makes the draw independent of shard geometry and keeps paired
// comparisons (same seed, different Blocked sets) aligned per node.
func transitionRand(base uint64, step, node int) float64 {
	x := base ^ splitmix64(uint64(step)*0xA24BAED4963EE407)
	x = splitmix64(x + uint64(node)*0x9FB21C651E98DF25)
	return float64(x>>11) * 0x1p-53
}

// Run simulates the agent-based process on g. Agents with zero out-degree
// still participate (they can be infected; they simply contribute no
// infectivity). The trajectory is a deterministic function of (g, cfg, rng
// state) and does not depend on cfg.Workers.
func Run(g *graph.Graph, cfg Config, rng *rand.Rand) (*Result, error) {
	return RunCtx(context.Background(), g, cfg, rng)
}

// RunCtx is Run with cancellation: ctx is polled once per time step, so a
// long Monte-Carlo run aborts promptly when its job times out or is
// cancelled. Cancellation does not perturb the deterministic trajectory of
// runs that complete.
func RunCtx(ctx context.Context, g *graph.Graph, cfg Config, rng *rand.Rand) (*Result, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("abm: empty graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("abm: nil rand source")
	}
	n := g.NumNodes()
	nf := float64(n)

	// Precompute per-node rates. omegaNode hoists the ω(k_u) evaluation out
	// of the per-step loops: one KFunc call per node per run instead of one
	// per infected node per step.
	lambda := make([]float64, n)
	omegaNode := make([]float64, n)    // ω(k_u)
	omegaOverDeg := make([]float64, n) // ω(k_u)/outdeg(u), 0 for isolated
	var meanK float64
	for u := 0; u < n; u++ {
		k := float64(g.OutDegree(u))
		meanK += k
		lambda[u] = cfg.Lambda(k)
		if lambda[u] < 0 {
			return nil, fmt.Errorf("abm: λ(%g) negative", k)
		}
		om := cfg.Omega(k)
		if k > 0 {
			if om < 0 {
				return nil, fmt.Errorf("abm: ω(%g) negative", k)
			}
			omegaOverDeg[u] = om / k
		}
		omegaNode[u] = om
	}
	meanK /= nf
	if meanK <= 0 {
		return nil, errors.New("abm: graph has no edges")
	}

	// Pre-block the targeted users, then seed the infection among the rest.
	state := make([]State, n)
	for u := range state {
		state[u] = Susceptible
	}
	for _, u := range cfg.Blocked {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("abm: blocked node %d out of range [0, %d)", u, n)
		}
		state[u] = Recovered
	}
	seeded := 0
	if len(cfg.Seeds) > 0 {
		for _, u := range cfg.Seeds {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("abm: seed node %d out of range [0, %d)", u, n)
			}
			if state[u] == Recovered {
				continue
			}
			if state[u] != Infected {
				state[u] = Infected
				seeded++
			}
		}
	} else {
		seeds := int(math.Round(cfg.I0 * nf))
		if seeds < 1 {
			seeds = 1
		}
		for _, u := range rng.Perm(n) {
			if seeded == seeds {
				break
			}
			if state[u] == Recovered {
				continue
			}
			state[u] = Infected
			seeded++
		}
	}
	if seeded == 0 {
		return nil, errors.New("abm: nothing to seed (all candidates blocked)")
	}

	// All per-step randomness derives from this one draw; the sequential
	// rng is not consulted again, so the sweep can shard freely.
	baseSeed := rng.Uint64()

	res := &Result{
		T:     make([]float64, 0, cfg.Steps+1),
		S:     make([]float64, 0, cfg.Steps+1),
		I:     make([]float64, 0, cfg.Steps+1),
		R:     make([]float64, 0, cfg.Steps+1),
		Theta: make([]float64, 0, cfg.Steps+1),
	}
	pRec1 := 1 - math.Exp(-cfg.Eps1*cfg.Dt)
	pRec2 := 1 - math.Exp(-cfg.Eps2*cfg.Dt)
	next := make([]State, n)

	// Incremental compartment counters replace the O(n) per-sample rescan:
	// one initial scan, then per-shard deltas applied in shard order.
	var sCnt, iCnt, rCnt int
	var thetaSum float64 // Σ_{u infected} ω(k_u)
	for u, st := range state {
		switch st {
		case Susceptible:
			sCnt++
		case Infected:
			iCnt++
			thetaSum += omegaNode[u]
		case Recovered:
			rCnt++
		}
	}
	record := func(t float64) {
		res.T = append(res.T, t)
		res.S = append(res.S, float64(sCnt)/nf)
		res.I = append(res.I, float64(iCnt)/nf)
		res.R = append(res.R, float64(rCnt)/nf)
		res.Theta = append(res.Theta, thetaSum/(nf*meanK))
	}
	record(0)

	type delta struct {
		dS, dI, dR int
		dTheta     float64
	}
	workers := par.Default(cfg.Workers)
	deltas := make([]delta, par.NumShards(n, shardSize))
	plan := newSweepPlan(g, cfg.Mode)

	// Hoist the progress decision out of the step loop; the hook path costs
	// nothing when no one is listening.
	hook := cfg.Progress != nil
	every := cfg.ProgressEvery
	if every <= 0 {
		every = 16
	}

	for step := 1; step <= cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("abm: run cancelled at step %d: %w", step, err)
		}
		var sweepStart time.Time
		if hook {
			sweepStart = time.Now()
		}
		// Global Θ for the annealed mode, from the running counter.
		var theta float64
		if cfg.Mode == ModeAnnealed {
			theta = thetaSum / (nf * meanK)
		}

		err := par.ForEachShard(workers, n, shardSize, func(shard, lo, hi int) error {
			var d delta
			if cfg.Mode == ModeAnnealed {
				// Phase 1 — draws, in degree-bucket order. Every transition
				// is a pure function of (baseSeed, step, node) plus the
				// frozen state array, so this phase may visit the shard's
				// nodes in any order; bucketing lets every equal-degree run
				// share one λ(k) lookup and one 1−exp(−λ(k)Θ·Δt) — the
				// sweep's dominant cost drops from one exp per node to one
				// per (bucket, step).
				ord := plan.order[lo:hi]
				for j := 0; j < len(ord); {
					v0 := int(ord[j])
					d0 := plan.deg[v0]
					// Identical bits to the per-node path: force and pInf
					// depend only on the degree, frozen Θ and Δt.
					force := lambda[v0] * theta
					pInf := 1 - math.Exp(-force*cfg.Dt)
					pStop := pInf + (1-pInf)*pRec1
					for ; j < len(ord); j++ {
						v := int(ord[j])
						if plan.deg[v] != d0 {
							break
						}
						st := state[v]
						next[v] = st
						switch st {
						case Susceptible:
							// Competing risks: infection at rate force,
							// immunization at rate ε1.
							switch u := transitionRand(baseSeed, step, v); {
							case u < pInf:
								next[v] = Infected
							case u < pStop:
								next[v] = Recovered
							}
						case Infected:
							if transitionRand(baseSeed, step, v) < pRec2 {
								next[v] = Recovered
							}
						}
					}
				}
				// Phase 2 — fold the shard's deltas in node order. The Θ
				// delta is a float sum, so this pass reproduces the exact
				// summation order of the pre-bucketing sweep (ascending node
				// id within the shard); the compartment counts are integers
				// and would be order-free anyway.
				for v := lo; v < hi; v++ {
					was, now := state[v], next[v]
					if was == now {
						continue
					}
					switch {
					case was == Susceptible && now == Infected:
						d.dS--
						d.dI++
						d.dTheta += omegaNode[v]
					case was == Susceptible: // immunized
						d.dS--
						d.dR++
					default: // Infected → Recovered
						d.dI--
						d.dR++
						d.dTheta -= omegaNode[v]
					}
				}
			} else {
				// Quenched: the force is per-node (each v sees its own
				// infected in-neighborhood), so there is nothing for a
				// degree bucket to share; a single node-ordered pass keeps
				// the CSR adjacency stream and state[] accesses sequential.
				for v := lo; v < hi; v++ {
					st := state[v]
					next[v] = st
					switch st {
					case Susceptible:
						var local float64
						for _, u := range plan.inAdj[plan.inOff[v]:plan.inOff[v+1]] {
							if state[u] == Infected {
								local += omegaOverDeg[u]
							}
						}
						pInf, pStop := 0.0, pRec1
						if local != 0 {
							// local == 0 needs no exp: 1−exp(0) is exactly
							// 0, so pInf = 0 and the immunization threshold
							// reduces to pRec1 — bit-identical to computing
							// it.
							force := lambda[v] * local / meanK
							pInf = 1 - math.Exp(-force*cfg.Dt)
							pStop = pInf + (1-pInf)*pRec1
						}
						switch u := transitionRand(baseSeed, step, v); {
						case u < pInf:
							next[v] = Infected
							d.dS--
							d.dI++
							d.dTheta += omegaNode[v]
						case u < pStop:
							next[v] = Recovered
							d.dS--
							d.dR++
						}
					case Infected:
						if transitionRand(baseSeed, step, v) < pRec2 {
							next[v] = Recovered
							d.dI--
							d.dR++
							d.dTheta -= omegaNode[v]
						}
					}
				}
			}
			deltas[shard] = d
			return nil
		})
		if err != nil {
			return nil, err
		}
		for s := range deltas {
			sCnt += deltas[s].dS
			iCnt += deltas[s].dI
			rCnt += deltas[s].dR
			thetaSum += deltas[s].dTheta
			deltas[s] = delta{}
		}
		state, next = next, state
		record(float64(step) * cfg.Dt)
		if hook && (step%every == 0 || step == cfg.Steps) {
			cfg.Progress(obs.Event{
				Stage:   obs.StageABM,
				Step:    step,
				Total:   cfg.Steps,
				T:       float64(step) * cfg.Dt,
				Value:   float64(iCnt) / nf,
				Elapsed: time.Since(sweepStart),
				// The compartments partition the node set exactly, so any
				// non-zero MassErr means the shard deltas corrupted a count
				// (internal/obs/invariant treats it as a hard violation).
				MassErr: math.Abs(float64(sCnt+iCnt+rCnt)-nf) / nf,
			})
		}
	}
	return res, nil
}

// ErrTrialMismatch reports that a trial produced a trajectory whose length
// diverges from the other trials' — MeanRun cannot average misaligned
// samples.
var ErrTrialMismatch = errors.New("abm: trial trajectory length mismatch")

// checkTrialAlignment verifies every trial sampled the same number of
// points as the first, so the sample-by-sample average below cannot index
// past a shorter trajectory.
func checkTrialAlignment(runs []*Result) error {
	for _, r := range runs[1:] {
		if len(r.T) != len(runs[0].T) {
			return fmt.Errorf("%w: %d vs %d samples", ErrTrialMismatch, len(r.T), len(runs[0].T))
		}
	}
	return nil
}

// MeanRun averages trials independent runs sample-by-sample, reducing Monte
// Carlo noise for comparisons against the deterministic ODE. Each trial
// runs from its own RNG derived from rng up front in trial order, so trials
// execute concurrently (up to cfg.Workers at once) while the averaged
// result stays bit-identical for every worker count.
func MeanRun(g *graph.Graph, cfg Config, trials int, rng *rand.Rand) (*Result, error) {
	return MeanRunCtx(context.Background(), g, cfg, trials, rng)
}

// MeanRunCtx is MeanRun with cancellation threaded into every trial; the
// first trial to observe the cancelled context aborts the whole fan-out.
func MeanRunCtx(ctx context.Context, g *graph.Graph, cfg Config, trials int, rng *rand.Rand) (*Result, error) {
	if trials < 1 {
		return nil, fmt.Errorf("abm: trials = %d must be positive", trials)
	}
	if rng == nil {
		return nil, errors.New("abm: nil rand source")
	}
	trialSeeds := make([]int64, trials)
	for t := range trialSeeds {
		trialSeeds[t] = rng.Int63()
	}

	// Split the budget: prefer trial-level parallelism (perfectly
	// independent work), give leftover workers to each trial's sweep.
	workers := par.Default(cfg.Workers)
	trialWorkers := min(workers, trials)
	inner := cfg
	inner.Workers = max(1, workers/trialWorkers)
	// Per-step checkpoints only make sense as a single ordered stream;
	// with concurrent trials, report trial completions instead.
	if trials > 1 {
		inner.Progress = nil
	}

	var done atomic.Int64
	runs, err := par.Map(trialWorkers, trials, func(t int) (*Result, error) {
		r, rerr := RunCtx(ctx, g, inner, rand.New(rand.NewSource(trialSeeds[t])))
		if rerr == nil && cfg.Progress != nil {
			cfg.Progress(obs.Event{
				Stage: obs.StageABMTrials,
				Step:  int(done.Add(1)),
				Total: trials,
			})
		}
		return r, rerr
	})
	if err != nil {
		return nil, err
	}

	if err := checkTrialAlignment(runs); err != nil {
		return nil, err
	}
	acc := runs[0]
	for _, r := range runs[1:] {
		for j := range acc.T {
			acc.S[j] += r.S[j]
			acc.I[j] += r.I[j]
			acc.R[j] += r.R[j]
			acc.Theta[j] += r.Theta[j]
		}
	}
	inv := 1 / float64(trials)
	for j := range acc.T {
		acc.S[j] *= inv
		acc.I[j] *= inv
		acc.R[j] *= inv
		acc.Theta[j] *= inv
	}
	return acc, nil
}
