// Package abm cross-validates the mean-field ODE model with an agent-based
// Monte-Carlo SIR simulation on an explicit social graph.
//
// Two contact modes are provided:
//
//   - ModeAnnealed reproduces the mean-field assumption exactly: every
//     susceptible agent feels the global infectivity Θ(t); the ODE system
//     is the N → ∞ limit of this process, so trajectories must agree.
//   - ModeQuenched uses the actual graph edges: agent v is pressured only
//     by its infected in-neighbors, with per-edge weight ω(k_u)/outdeg(u)
//     chosen so that the expected force over a configuration-model graph
//     equals the mean-field force λ(k_v)·Θ (see DESIGN.md). Differences
//     from the ODE quantify the quenched-network correction the paper's
//     model ignores.
package abm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"rumornet/internal/degreedist"
	"rumornet/internal/graph"
)

// Mode selects the contact structure.
type Mode int

// Modes.
const (
	ModeAnnealed Mode = iota + 1
	ModeQuenched
)

// State is an agent's compartment.
type State uint8

// Agent states.
const (
	Susceptible State = iota + 1
	Infected
	Recovered
)

// Config parameterizes a simulation run.
type Config struct {
	// Lambda and Omega are the acceptance and infectivity functions of the
	// mean-field model (evaluated on out-degrees).
	Lambda, Omega degreedist.KFunc
	// Eps1 and Eps2 are the immunization and blocking rates.
	Eps1, Eps2 float64
	// I0 is the initial infected fraction (seeded uniformly at random).
	I0 float64
	// Dt is the time step; transition probabilities are 1 − exp(−rate·Dt).
	Dt float64
	// Steps is the number of time steps.
	Steps int
	// Mode selects annealed (mean-field) or quenched (graph-edge) contact.
	Mode Mode
	// Blocked lists nodes recovered at t = 0 before the rumor starts — the
	// "block rumors at influential users" countermeasure of the paper's
	// introduction. Blocked nodes are never seeded and never infected.
	// Nodes out of range cause an error.
	Blocked []int
	// Seeds, when non-empty, is the explicit set of initially infected
	// nodes (e.g. the early voters of a Digg story) and overrides the
	// random I0 seeding. Blocked nodes among the seeds are skipped.
	Seeds []int
}

func (c Config) validate() error {
	switch {
	case c.Lambda == nil || c.Omega == nil:
		return errors.New("abm: Lambda and Omega are required")
	case c.Eps1 < 0 || c.Eps2 < 0:
		return fmt.Errorf("abm: negative countermeasure rates (%g, %g)", c.Eps1, c.Eps2)
	case c.I0 <= 0 || c.I0 >= 1:
		return fmt.Errorf("abm: I0 = %g outside (0, 1)", c.I0)
	case c.Dt <= 0:
		return fmt.Errorf("abm: Dt = %g must be positive", c.Dt)
	case c.Steps < 1:
		return fmt.Errorf("abm: Steps = %d must be positive", c.Steps)
	case c.Mode != ModeAnnealed && c.Mode != ModeQuenched:
		return fmt.Errorf("abm: unknown mode %d", int(c.Mode))
	}
	return nil
}

// Result holds the sampled fractions of each compartment over time.
type Result struct {
	// T[j] is the time of sample j (T[0] = 0).
	T []float64
	// S, I, R are the population fractions at each sample.
	S, I, R []float64
	// Theta is the realized average infectivity at each sample.
	Theta []float64
}

// FinalI returns the final infected fraction.
func (r *Result) FinalI() float64 { return r.I[len(r.I)-1] }

// PeakI returns the maximum infected fraction over the run.
func (r *Result) PeakI() float64 {
	var m float64
	for _, v := range r.I {
		if v > m {
			m = v
		}
	}
	return m
}

// Run simulates the agent-based process on g. Agents with zero out-degree
// still participate (they can be infected; they simply contribute no
// infectivity).
func Run(g *graph.Graph, cfg Config, rng *rand.Rand) (*Result, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("abm: empty graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, errors.New("abm: nil rand source")
	}
	n := g.NumNodes()
	nf := float64(n)

	// Precompute per-node rates.
	lambda := make([]float64, n)
	omegaOverDeg := make([]float64, n) // ω(k_u)/outdeg(u), 0 for isolated
	var meanK float64
	for u := 0; u < n; u++ {
		k := float64(g.OutDegree(u))
		meanK += k
		lambda[u] = cfg.Lambda(k)
		if lambda[u] < 0 {
			return nil, fmt.Errorf("abm: λ(%g) negative", k)
		}
		if k > 0 {
			om := cfg.Omega(k)
			if om < 0 {
				return nil, fmt.Errorf("abm: ω(%g) negative", k)
			}
			omegaOverDeg[u] = om / k
		}
	}
	meanK /= nf
	if meanK <= 0 {
		return nil, errors.New("abm: graph has no edges")
	}

	// Pre-block the targeted users, then seed the infection among the rest.
	state := make([]State, n)
	for u := range state {
		state[u] = Susceptible
	}
	for _, u := range cfg.Blocked {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("abm: blocked node %d out of range [0, %d)", u, n)
		}
		state[u] = Recovered
	}
	seeded := 0
	if len(cfg.Seeds) > 0 {
		for _, u := range cfg.Seeds {
			if u < 0 || u >= n {
				return nil, fmt.Errorf("abm: seed node %d out of range [0, %d)", u, n)
			}
			if state[u] == Recovered {
				continue
			}
			if state[u] != Infected {
				state[u] = Infected
				seeded++
			}
		}
	} else {
		seeds := int(math.Round(cfg.I0 * nf))
		if seeds < 1 {
			seeds = 1
		}
		for _, u := range rng.Perm(n) {
			if seeded == seeds {
				break
			}
			if state[u] == Recovered {
				continue
			}
			state[u] = Infected
			seeded++
		}
	}
	if seeded == 0 {
		return nil, errors.New("abm: nothing to seed (all candidates blocked)")
	}

	res := &Result{
		T:     make([]float64, 0, cfg.Steps+1),
		S:     make([]float64, 0, cfg.Steps+1),
		I:     make([]float64, 0, cfg.Steps+1),
		R:     make([]float64, 0, cfg.Steps+1),
		Theta: make([]float64, 0, cfg.Steps+1),
	}
	pRec1 := 1 - math.Exp(-cfg.Eps1*cfg.Dt)
	pRec2 := 1 - math.Exp(-cfg.Eps2*cfg.Dt)
	next := make([]State, n)

	record := func(t float64) {
		var s, i, r int
		var theta float64
		for u, st := range state {
			switch st {
			case Susceptible:
				s++
			case Infected:
				i++
				theta += cfg.Omega(float64(g.OutDegree(u)))
			case Recovered:
				r++
			}
		}
		res.T = append(res.T, t)
		res.S = append(res.S, float64(s)/nf)
		res.I = append(res.I, float64(i)/nf)
		res.R = append(res.R, float64(r)/nf)
		res.Theta = append(res.Theta, theta/(nf*meanK))
	}
	record(0)

	for step := 1; step <= cfg.Steps; step++ {
		// Global Θ for the annealed mode.
		var theta float64
		if cfg.Mode == ModeAnnealed {
			for u, st := range state {
				if st == Infected {
					theta += cfg.Omega(float64(g.OutDegree(u)))
				}
			}
			theta /= nf * meanK
		}

		copy(next, state)
		for v, st := range state {
			switch st {
			case Susceptible:
				var force float64
				if cfg.Mode == ModeAnnealed {
					force = lambda[v] * theta
				} else {
					var local float64
					for _, u := range g.InNeighbors(v) {
						if state[u] == Infected {
							local += omegaOverDeg[u]
						}
					}
					force = lambda[v] * local / meanK
				}
				// Competing risks: infection at rate force, immunization
				// at rate ε1.
				pInf := 1 - math.Exp(-force*cfg.Dt)
				switch u := rng.Float64(); {
				case u < pInf:
					next[v] = Infected
				case u < pInf+(1-pInf)*pRec1:
					next[v] = Recovered
				}
			case Infected:
				if rng.Float64() < pRec2 {
					next[v] = Recovered
				}
			}
		}
		state, next = next, state
		record(float64(step) * cfg.Dt)
	}
	return res, nil
}

// MeanRun averages trials independent runs sample-by-sample, reducing Monte
// Carlo noise for comparisons against the deterministic ODE.
func MeanRun(g *graph.Graph, cfg Config, trials int, rng *rand.Rand) (*Result, error) {
	if trials < 1 {
		return nil, fmt.Errorf("abm: trials = %d must be positive", trials)
	}
	var acc *Result
	for trial := 0; trial < trials; trial++ {
		r, err := Run(g, cfg, rng)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = r
			continue
		}
		for j := range acc.T {
			acc.S[j] += r.S[j]
			acc.I[j] += r.I[j]
			acc.R[j] += r.R[j]
			acc.Theta[j] += r.Theta[j]
		}
	}
	inv := 1 / float64(trials)
	for j := range acc.T {
		acc.S[j] *= inv
		acc.I[j] *= inv
		acc.R[j] *= inv
		acc.Theta[j] *= inv
	}
	return acc, nil
}
