package abm

import (
	"math/rand"
	"sync"
	"testing"

	"rumornet/internal/obs"
)

func TestRunProgress(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeAnnealed)

	plain, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	var events []obs.Event
	cfg.ProgressEvery = 25
	cfg.Progress = func(ev obs.Event) { events = append(events, ev) }
	traced, err := Run(g, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}

	if traced.FinalI() != plain.FinalI() || len(traced.T) != len(plain.T) {
		t.Error("progress hook changed the sampled trajectory")
	}
	if len(events) != cfg.Steps/25 {
		t.Fatalf("events = %d, want every 25th of %d steps", len(events), cfg.Steps)
	}
	for i, ev := range events {
		if ev.Stage != obs.StageABM {
			t.Errorf("event %d stage %q", i, ev.Stage)
		}
		if ev.Step != 25*(i+1) || ev.Total != cfg.Steps {
			t.Errorf("event %d: Step=%d Total=%d", i, ev.Step, ev.Total)
		}
		if ev.Value < 0 || ev.Value > 1 {
			t.Errorf("event %d: infected fraction %g outside [0, 1]", i, ev.Value)
		}
		if ev.Elapsed <= 0 {
			t.Errorf("event %d: non-positive sweep time %v", i, ev.Elapsed)
		}
	}
	last := events[len(events)-1]
	if last.Step != cfg.Steps || last.T != float64(cfg.Steps)*cfg.Dt {
		t.Errorf("final event %+v does not cover the last step", last)
	}
}

func TestRunProgressFinalStepOffCadence(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeAnnealed)
	cfg.Steps = 10
	cfg.ProgressEvery = 7
	var steps []int
	cfg.Progress = func(ev obs.Event) { steps = append(steps, ev.Step) }
	if _, err := Run(g, cfg, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 || steps[0] != 7 || steps[1] != 10 {
		t.Errorf("checkpoint steps = %v, want [7 10]", steps)
	}
}

func TestMeanRunProgressTrials(t *testing.T) {
	g := testGraph(t)
	cfg := testConfig(ModeAnnealed)
	cfg.Steps = 20
	const trials = 5

	var mu sync.Mutex
	var trialSteps []int
	var stepEvents int
	wantTotal := trials
	cfg.Progress = func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		switch ev.Stage {
		case obs.StageABMTrials:
			if ev.Total != wantTotal {
				t.Errorf("trial event Total=%d, want %d", ev.Total, wantTotal)
			}
			trialSteps = append(trialSteps, ev.Step)
		case obs.StageABM:
			stepEvents++
		}
	}
	if _, err := MeanRun(g, cfg, trials, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if len(trialSteps) != trials {
		t.Fatalf("trial completions = %v, want %d events", trialSteps, trials)
	}
	// Completion counters are a permutation-free prefix: each Step value
	// 1..trials appears exactly once (arrival order may vary).
	seen := make(map[int]bool)
	for _, s := range trialSteps {
		if s < 1 || s > trials || seen[s] {
			t.Fatalf("trial completion steps %v not a permutation of 1..%d", trialSteps, trials)
		}
		seen[s] = true
	}
	if stepEvents != 0 {
		t.Errorf("per-step events leaked through a %d-trial fan-out: %d", trials, stepEvents)
	}

	// A single trial forwards the per-step stream.
	stepEvents = 0
	trialSteps = nil
	wantTotal = 1
	if _, err := MeanRun(g, cfg, 1, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if stepEvents == 0 {
		t.Error("single-trial MeanRun should forward StageABM checkpoints")
	}
	if len(trialSteps) != 1 {
		t.Errorf("single-trial MeanRun completions = %v, want one", trialSteps)
	}
}

// The instrumentation-overhead pair recorded by scripts/bench.sh pr3: the
// same quenched sweep with no hook versus a counting hook on the default
// cadence. The acceptance bound is <5% overhead.
func benchmarkRunProgress(b *testing.B, prog obs.Progress) {
	g := testGraph(b)
	cfg := testConfig(ModeQuenched)
	cfg.Steps = 50
	cfg.Progress = prog
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunProgressOff(b *testing.B) {
	benchmarkRunProgress(b, nil)
}

func BenchmarkRunProgressOn(b *testing.B) {
	var checkpoints int
	benchmarkRunProgress(b, func(obs.Event) { checkpoints++ })
}
