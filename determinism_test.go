package rumornet

// Determinism regression tests for the worker fan-out: every experiment must
// produce bit-identical output regardless of the -workers setting, so
// parallelism can never change a figure. The internal/abm package carries the
// same guarantee for abm.Run and abm.MeanRun (see internal/abm/parallel_test.go);
// these tests pin it end-to-end through the experiment registry.

import (
	"reflect"
	"testing"
)

func assertWorkerInvariant(t *testing.T, id string) {
	t.Helper()
	serial, err := RunExperiment(id, ExperimentConfig{Seed: 3, Quick: true, Workers: 1})
	if err != nil {
		t.Fatalf("%s workers=1: %v", id, err)
	}
	parallel, err := RunExperiment(id, ExperimentConfig{Seed: 3, Quick: true, Workers: 8})
	if err != nil {
		t.Fatalf("%s workers=8: %v", id, err)
	}
	if !reflect.DeepEqual(serial.Series, parallel.Series) {
		t.Errorf("%s: series differ between workers=1 and workers=8", id)
	}
	if !reflect.DeepEqual(serial.Scalars, parallel.Scalars) {
		t.Errorf("%s: scalars differ between workers=1 and workers=8", id)
	}
}

// TestFig3aWorkerInvariance pins the 10-IC trajectory fan-out of Fig. 3(a):
// the random initial conditions are drawn before the fan-out, so the series
// must match the serial run exactly.
func TestFig3aWorkerInvariance(t *testing.T) {
	assertWorkerInvariant(t, "fig3a")
}

// TestValABMWorkerInvariance pins the agent-based path: the per-node
// transition sweep uses counter-based draws keyed by (seed, step, node), so
// the Monte-Carlo trajectories are identical at any worker count.
func TestValABMWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("ABM cross-validation is slow; skipped with -short")
	}
	assertWorkerInvariant(t, "valABM")
}

// TestAblTWorkerInvariance pins the targeting ablation end-to-end: paired
// ABM runs with per-strategy Blocked sets, driven through the
// degree-bucketed transition sweep. Covers the interaction the unit tests
// cannot: bucketed visit order + blocked nodes + the experiment registry's
// own worker plumbing.
func TestAblTWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("targeting ablation is slow; skipped with -short")
	}
	assertWorkerInvariant(t, "ablT")
}
