package rumornet_test

import (
	"fmt"
	"math/rand"

	"rumornet"
)

// Build a model on an analytic scale-free network and apply the paper's
// critical conditions (Theorem 5).
func ExampleNewCalibratedModel() {
	dist, err := rumornet.PowerLawDegreeDist(1.5, 1, 100)
	if err != nil {
		panic(err)
	}
	// Calibrate the acceptance rate so the threshold is exactly 0.7220 —
	// the paper's Fig. 2 regime.
	m, err := rumornet.NewCalibratedModel(dist, 0.01, 0.2, 0.05, 0.7220,
		rumornet.OmegaSaturating(0.5, 0.5))
	if err != nil {
		panic(err)
	}
	fmt.Printf("r0 = %.4f → %s\n", m.R0(), m.Classify())
	// Output:
	// r0 = 0.7220 → extinct
}

// The zero equilibrium E0 of Theorem 1: S = α/ε1, I = 0, R = 1 − α/ε1.
func ExampleModel_ZeroEquilibrium() {
	dist, err := rumornet.PowerLawDegreeDist(2, 1, 10)
	if err != nil {
		panic(err)
	}
	m, err := rumornet.NewModel(dist, rumornet.Params{
		Alpha:  0.01,
		Eps1:   0.2,
		Eps2:   0.05,
		Lambda: rumornet.LambdaLinear(0.01),
		Omega:  rumornet.OmegaSaturating(0.5, 0.5),
	})
	if err != nil {
		panic(err)
	}
	e0 := m.ZeroEquilibrium()
	fmt.Printf("S0 = %.2f  I0 = %.0f  R0 = %.2f\n",
		m.S(e0.Y, 0), m.I(e0.Y, 0), m.R(e0.Y, 0))
	// Output:
	// S0 = 0.05  I0 = 0  R0 = 0.95
}

// Threshold planning with the closed-form sensitivity of r0.
func ExampleModel_RequiredEps2() {
	dist, err := rumornet.PowerLawDegreeDist(1.8, 1, 50)
	if err != nil {
		panic(err)
	}
	m, err := rumornet.NewCalibratedModel(dist, 0.01, 0.05, 0.02, 2.0,
		rumornet.OmegaSaturating(0.5, 0.5))
	if err != nil {
		panic(err)
	}
	// The rumor is endemic (r0 = 2). How hard must we block to subdue it?
	eps2, err := m.RequiredEps2(0.95)
	if err != nil {
		panic(err)
	}
	fmt.Printf("raise ε2 from %.3f to %.3f\n", m.Params().Eps2, eps2)
	fmt.Printf("new r0 = %.2f\n", m.R0At(m.Params().Eps1, eps2))
	// Output:
	// raise ε2 from 0.020 to 0.042
	// new r0 = 0.95
}

// A full simulation: seed 5% of every degree group and watch the rumor die.
func ExampleModel_Simulate() {
	dist, err := rumornet.PowerLawDegreeDist(1.5, 1, 20)
	if err != nil {
		panic(err)
	}
	m, err := rumornet.NewCalibratedModel(dist, 0.01, 0.2, 0.05, 0.5,
		rumornet.OmegaSaturating(0.5, 0.5))
	if err != nil {
		panic(err)
	}
	ic, err := m.UniformIC(0.05)
	if err != nil {
		panic(err)
	}
	tr, err := m.Simulate(ic, 400, nil)
	if err != nil {
		panic(err)
	}
	ext, err := tr.TimeToExtinction(0.01)
	if err != nil {
		panic(err)
	}
	fmt.Printf("below 1%% infected by t = %.0f (verdict: %s)\n", ext, m.Classify())
	// Output:
	// below 1% infected by t = 100 (verdict: extinct)
}

// The classical Daley–Kendall result: about 80% of the population
// eventually hears a rumor (final ignorant fraction ≈ 0.2032).
func ExampleDKMeanField_FinalIgnorant() {
	mf := rumornet.DKMeanField{Beta: 1, GammaStifle: 1}
	final, err := mf.FinalIgnorant(1e-4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("final ignorant fraction ≈ %.3f\n", final)
	// Output:
	// final ignorant fraction ≈ 0.203
}

// Generating a synthetic Digg2009-scale degree distribution.
func ExampleSyntheticDiggDist() {
	rng := rand.New(rand.NewSource(7))
	dist, err := rumornet.SyntheticDiggDist(rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("degree support [%d, %d]\n", dist.MinDegree(), dist.MaxDegree())
	// Output:
	// degree support [1, 995]
}
