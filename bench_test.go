package rumornet

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus this repository's ablations and validations. Each
// benchmark regenerates its artifact end-to-end (model calibration,
// simulation or optimization, series assembly) at reduced "Quick" fidelity
// so `go test -bench=.` stays tractable; cmd/figgen runs the same
// experiments at full fidelity.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Shape assertions live in the unit tests (internal/experiments); the
// benchmarks only verify the experiments still complete and report cost.

import "testing"

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	benchExperimentWorkers(b, id, 0)
}

func benchExperimentWorkers(b *testing.B, id string, workers int) {
	b.Helper()
	cfg := ExperimentConfig{Seed: 1, Quick: true, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunExperiment(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Series) == 0 {
			b.Fatalf("%s: empty result", id)
		}
	}
}

// BenchmarkTabDatasetSummary regenerates the dataset description table
// (Section V: users, links, groups, degree support, mean degree).
func BenchmarkTabDatasetSummary(b *testing.B) { benchExperiment(b, "tabD") }

// BenchmarkFig2aDistToE0 regenerates Fig. 2(a): convergence to the zero
// equilibrium under 10 initial conditions (r0 = 0.7220).
func BenchmarkFig2aDistToE0(b *testing.B) { benchExperiment(b, "fig2a") }

// BenchmarkFig2TrajS regenerates Fig. 2(b): S_ki(t) in the extinction regime.
func BenchmarkFig2TrajS(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig2TrajI regenerates Fig. 2(c): I_ki(t) in the extinction regime.
func BenchmarkFig2TrajI(b *testing.B) { benchExperiment(b, "fig2c") }

// BenchmarkFig2TrajR regenerates Fig. 2(d): R_ki(t) in the extinction regime.
func BenchmarkFig2TrajR(b *testing.B) { benchExperiment(b, "fig2d") }

// BenchmarkFig3aDistToEPlus regenerates Fig. 3(a): convergence to the
// positive equilibrium under 10 initial conditions (r0 = 2.1661).
func BenchmarkFig3aDistToEPlus(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3TrajS regenerates Fig. 3(b): S_ki(t) in the epidemic regime.
func BenchmarkFig3TrajS(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig3TrajI regenerates Fig. 3(c): I_ki(t) in the epidemic regime.
func BenchmarkFig3TrajI(b *testing.B) { benchExperiment(b, "fig3c") }

// BenchmarkFig3TrajR regenerates Fig. 3(d): R_ki(t) in the epidemic regime.
func BenchmarkFig3TrajR(b *testing.B) { benchExperiment(b, "fig3d") }

// BenchmarkFig4aOptimalPolicy regenerates Fig. 4(a): the Pontryagin-optimal
// ε1(t), ε2(t) via the forward–backward sweep (c1 = 5, c2 = 10).
func BenchmarkFig4aOptimalPolicy(b *testing.B) { benchExperiment(b, "fig4a") }

// BenchmarkFig4bThresholdEvolution regenerates Fig. 4(b): the threshold
// under the optimized countermeasures decreasing through 1.
func BenchmarkFig4bThresholdEvolution(b *testing.B) { benchExperiment(b, "fig4b") }

// BenchmarkFig4cCostComparison regenerates Fig. 4(c): heuristic vs
// optimized countermeasure cost at equal terminal infection.
func BenchmarkFig4cCostComparison(b *testing.B) { benchExperiment(b, "fig4c") }

// BenchmarkAblationAdjoint compares the exact FBSM adjoint with the paper's
// diagonal co-state simplification (Eq. 16).
func BenchmarkAblationAdjoint(b *testing.B) { benchExperiment(b, "ablA") }

// BenchmarkAblationInstruments compares block-only, truth-only and joint
// optimal policies.
func BenchmarkAblationInstruments(b *testing.B) { benchExperiment(b, "ablC") }

// BenchmarkAblationTargeting measures the centrality-targeted blocking
// comparison ("Rumor ends with Sage").
func BenchmarkAblationTargeting(b *testing.B) { benchExperiment(b, "ablT") }

// BenchmarkAblationInfectivity sweeps the ω(k) infectivity families at a
// pinned threshold.
func BenchmarkAblationInfectivity(b *testing.B) { benchExperiment(b, "ablW") }

// BenchmarkAblationHomogeneous compares the heterogeneous model with its
// homogeneous-mixing reduction.
func BenchmarkAblationHomogeneous(b *testing.B) { benchExperiment(b, "ablH") }

// BenchmarkValidationABM cross-validates the mean-field ODE against the
// agent-based Monte-Carlo simulation.
func BenchmarkValidationABM(b *testing.B) { benchExperiment(b, "valABM") }

// BenchmarkValidationABMSerial runs the Quick Digg-scale ABM cross-validation
// pinned to one worker — the serial baseline for the fan-out speedup
// recorded in BENCH_PR1.json (scripts/bench.sh).
func BenchmarkValidationABMSerial(b *testing.B) { benchExperimentWorkers(b, "valABM", 1) }

// BenchmarkValidationABMParallel runs the same workload with one worker per
// CPU; its output is bit-identical to the serial run (determinism_test.go).
func BenchmarkValidationABMParallel(b *testing.B) { benchExperimentWorkers(b, "valABM", 0) }

// BenchmarkValidationDK validates the classical Daley–Kendall lineage
// against the 20.3% final-size law.
func BenchmarkValidationDK(b *testing.B) { benchExperiment(b, "valDK") }

// BenchmarkExtensionSpatialFront measures the reaction–diffusion traveling-
// front extension.
func BenchmarkExtensionSpatialFront(b *testing.B) { benchExperiment(b, "extS") }

// BenchmarkExtensionTraceIC measures the vote-trace-seeded initial-condition
// comparison.
func BenchmarkExtensionTraceIC(b *testing.B) { benchExperiment(b, "extV") }
