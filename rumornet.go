// Package rumornet is a Go implementation of "Modeling Propagation Dynamics
// and Developing Optimized Countermeasures for Rumor Spreading in Online
// Social Networks" (He, Cai, Wang — ICDCS 2015).
//
// It provides:
//
//   - the heterogeneous-network SIR rumor model (degree-grouped ODE system
//     with countermeasure rates ε1 "spread truth" and ε2 "block rumors");
//   - the epidemic threshold r0 and the equilibrium/stability analysis of
//     Theorems 1–5 (extinct vs endemic verdicts);
//   - optimized countermeasures via Pontryagin's maximum principle, solved
//     with a forward–backward sweep, plus the heuristic feedback baseline;
//   - the Digg2009 evaluation substrate: a loader for the original dataset
//     format and a calibrated synthetic generator matching its published
//     statistics;
//   - baselines (homogeneous mixing, Daley–Kendall, Maki–Thompson) and an
//     agent-based Monte-Carlo validator;
//   - every figure and table of the paper's evaluation as a reproducible
//     experiment (see cmd/figgen and EXPERIMENTS.md).
//
// This package is the public facade: it re-exports the library's types and
// constructors so downstream users never import internal packages. See
// examples/ for runnable walkthroughs, starting with examples/quickstart.
package rumornet

import (
	"fmt"
	"io"
	"math/rand"

	"rumornet/internal/abm"
	"rumornet/internal/classic"
	"rumornet/internal/control"
	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/experiments"
	"rumornet/internal/graph"
	"rumornet/internal/spatial"
)

// Core model types.
type (
	// Model is the heterogeneous SIR rumor-propagation model.
	Model = core.Model
	// Params holds the epidemic and countermeasure rates of System (1).
	Params = core.Params
	// Equilibrium is a fixed point of the model (E0 or E+).
	Equilibrium = core.Equilibrium
	// Equilibria bundles the full Theorem 1 analysis.
	Equilibria = core.Equilibria
	// Verdict is the Theorem 5 outcome: extinct or epidemic.
	Verdict = core.Verdict
	// Trajectory is a simulated solution with model-aware accessors.
	Trajectory = core.Trajectory
	// SimOptions configures Model.Simulate.
	SimOptions = core.SimOptions
)

// Verdict values.
const (
	VerdictExtinct  = core.VerdictExtinct
	VerdictEpidemic = core.VerdictEpidemic
)

// Degree-distribution types and rate families.
type (
	// DegreeDist is a discrete degree distribution P(k) over degree groups.
	DegreeDist = degreedist.Dist
	// KFunc maps a degree to a rate or weight (λ(k), ω(k)).
	KFunc = degreedist.KFunc
)

// Acceptance and infectivity families from the paper.
var (
	// LambdaLinear is λ(k) = max(0, scale·k), the paper's λ(k_i) = k_i
	// family with a calibration knob.
	LambdaLinear = degreedist.LambdaLinear
	// OmegaSaturating is ω(k) = k^β/(1+k^γ), the paper's preferred
	// non-linear infectivity (the evaluation uses β = γ = 0.5).
	OmegaSaturating = degreedist.OmegaSaturating
	// OmegaLinear is ω(k) = k.
	OmegaLinear = degreedist.OmegaLinear
	// OmegaConstant is ω(k) = c.
	OmegaConstant = degreedist.OmegaConstant
)

// Graph types.
type (
	// Graph is a directed social-network graph.
	Graph = graph.Graph
	// DiggStats summarizes a Digg-like graph with the paper's statistics.
	DiggStats = digg.Stats
)

// Control types.
type (
	// ControlOptions configures the Pontryagin FBSM solver.
	ControlOptions = control.Options
	// ControlPolicy is an optimized (or heuristic) countermeasure policy.
	ControlPolicy = control.Policy
	// ControlSchedule is a pair of time-varying controls ε1(t), ε2(t).
	ControlSchedule = control.Schedule
	// ControlCost holds the unit costs c1 (spread truth), c2 (block).
	ControlCost = control.Cost
)

// Adjoint variants for the FBSM backward sweep.
const (
	// AdjointExact keeps the full cross-group Θ coupling (default).
	AdjointExact = control.AdjointExact
	// AdjointDiagonal is the paper's simplified Equation (16).
	AdjointDiagonal = control.AdjointDiagonal
)

// NewModel builds a heterogeneous SIR model over a degree distribution.
func NewModel(dist *DegreeDist, p Params) (*Model, error) {
	return core.NewModel(dist, p)
}

// NewCalibratedModel builds a model whose threshold equals targetR0 using
// the linear acceptance family λ(k) = scale·k (the calibration recipe the
// reproduced experiments use; see DESIGN.md).
func NewCalibratedModel(dist *DegreeDist, alpha, eps1, eps2, targetR0 float64, omega KFunc) (*Model, error) {
	return core.CalibratedModel(dist, alpha, eps1, eps2, targetR0, omega)
}

// NewModelFromGraph builds a model from a graph's out-degree distribution.
func NewModelFromGraph(g *Graph, p Params) (*Model, error) {
	dist, err := degreedist.FromGraph(g)
	if err != nil {
		return nil, fmt.Errorf("rumornet: degree distribution: %w", err)
	}
	return core.NewModel(dist, p)
}

// DegreeDistFromGraph extracts the out-degree distribution of g.
func DegreeDistFromGraph(g *Graph) (*DegreeDist, error) {
	return degreedist.FromGraph(g)
}

// PowerLawDegreeDist builds the analytic truncated power law
// P(k) ∝ k^-gamma on [kmin, kmax].
func PowerLawDegreeDist(gamma float64, kmin, kmax int) (*DegreeDist, error) {
	return degreedist.TruncatedPowerLaw(gamma, kmin, kmax)
}

// SyntheticDigg generates a Digg2009-scale directed follower graph matching
// the statistics published in the paper (71,367 users, ~1.73 M links,
// degrees in [1, 995], ⟨k⟩ ≈ 24, ≈ 848 degree groups).
func SyntheticDigg(rng *rand.Rand) (*Graph, error) {
	return digg.Generate(rng)
}

// SyntheticDiggDist samples only the degree distribution of a synthetic
// Digg2009 network — all the ODE experiments need, and much faster than
// materializing the graph.
func SyntheticDiggDist(rng *rand.Rand) (*DegreeDist, error) {
	return digg.Dist(rng)
}

// SummarizeDigg computes the paper's dataset statistics for g.
func SummarizeDigg(g *Graph) DiggStats {
	return digg.Summarize(g)
}

// LoadDiggFriends parses the original Digg2009 "digg_friends.csv" format
// (mutual, friend_date, user_id, friend_id). It returns the directed
// follower graph and the original user ids indexed by dense node id.
func LoadDiggFriends(r io.Reader) (*Graph, []int64, error) {
	return digg.LoadFriendsCSV(r)
}

// LoadEdgeList parses a whitespace-separated "u v" edge list with '#'
// comments, remapping sparse ids densely.
func LoadEdgeList(r io.Reader) (*Graph, []int64, error) {
	return graph.ReadEdgeList(r)
}

// NewGraph returns an empty directed graph on n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewConfigurationGraph realizes a directed graph with the given out-degree
// sequence via the configuration model.
func NewConfigurationGraph(outDegrees []int, rng *rand.Rand) (*Graph, error) {
	return graph.ConfigurationModel(outDegrees, rng)
}

// NewBarabasiAlbert generates an undirected preferential-attachment graph
// (stored symmetrically) — a standard scale-free benchmark topology.
func NewBarabasiAlbert(n, mAttach int, rng *rand.Rand) (*Graph, error) {
	return graph.BarabasiAlbert(n, mAttach, rng)
}

// OptimizeCountermeasures runs the Pontryagin forward–backward sweep for
// the minimum-cost countermeasure problem over (0, tf].
func OptimizeCountermeasures(m *Model, ic []float64, tf float64, opts ControlOptions) (*ControlPolicy, error) {
	return control.Optimize(m, ic, tf, opts)
}

// OptimizeToTarget finds the cheapest policy driving the population-
// weighted infected density below target by tf.
func OptimizeToTarget(m *Model, ic []float64, tf, target float64, opts ControlOptions) (*ControlPolicy, error) {
	return control.OptimizeToTarget(m, ic, tf, target, opts)
}

// HeuristicCountermeasures builds the paper's feedback-only baseline: the
// controls react proportionally (gain) to the current infected density.
func HeuristicCountermeasures(m *Model, ic []float64, tf, gain float64, grid int, eps1Max, eps2Max float64, cost ControlCost) (*ControlPolicy, error) {
	return control.HeuristicPolicy(m, ic, tf, gain, grid, eps1Max, eps2Max, cost)
}

// CalibrateHeuristic finds the smallest feedback gain meeting the terminal
// infection target — the fair comparator of Fig. 4(c).
func CalibrateHeuristic(m *Model, ic []float64, tf, target float64, grid int, eps1Max, eps2Max float64, cost ControlCost) (*ControlPolicy, error) {
	return control.CalibrateHeuristic(m, ic, tf, target, grid, eps1Max, eps2Max, cost)
}

// EvaluatePolicyCost evaluates the paper's objective (13) for an arbitrary
// control schedule.
func EvaluatePolicyCost(m *Model, ic []float64, sched *ControlSchedule, cost ControlCost) (control.Breakdown, *Trajectory, error) {
	return control.EvaluateCost(m, ic, sched, cost)
}

// Homogenize collapses a model onto a single group at the mean degree — the
// "ignore network heterogeneity" baseline.
func Homogenize(m *Model) (*Model, error) {
	return classic.Homogenize(m)
}

// Agent-based validation types.
type (
	// ABMConfig parameterizes the agent-based Monte-Carlo simulation.
	ABMConfig = abm.Config
	// ABMResult holds its sampled compartment fractions.
	ABMResult = abm.Result
)

// ABM contact modes.
const (
	// ABMAnnealed applies the mean-field contact assumption.
	ABMAnnealed = abm.ModeAnnealed
	// ABMQuenched uses the actual graph edges.
	ABMQuenched = abm.ModeQuenched
)

// RunABM simulates the agent-based SIR process on g.
func RunABM(g *Graph, cfg ABMConfig, rng *rand.Rand) (*ABMResult, error) {
	return abm.Run(g, cfg, rng)
}

// HamiltonianSeries evaluates the Hamiltonian (Eq. 14) along a policy — a
// Pontryagin optimality diagnostic: along an exact extremal of this
// autonomous problem H(t) is constant.
func HamiltonianSeries(m *Model, ic []float64, pol *ControlPolicy, opts ControlOptions) ([]float64, error) {
	return control.HamiltonianSeries(m, ic, pol, opts)
}

// ReadScheduleJSON parses a control schedule previously serialized with
// ControlSchedule.WriteJSON.
func ReadScheduleJSON(r io.Reader) (*ControlSchedule, error) {
	return control.ReadScheduleJSON(r)
}

// Vote traces (the dataset's second file, digg_votes).
type (
	// Vote is a single story vote (vote_date, voter_id, story_id).
	Vote = digg.Vote
	// StoryIndex groups votes by story in time order.
	StoryIndex = digg.StoryIndex
)

// LoadDiggVotes parses the original digg_votes CSV format, returning votes
// sorted by time.
func LoadDiggVotes(r io.Reader) ([]Vote, error) {
	return digg.LoadVotesCSV(r)
}

// IndexVotes groups a time-sorted vote list by story.
func IndexVotes(votes []Vote) StoryIndex {
	return digg.IndexVotes(votes)
}

// SampleVotes synthesizes vote traces by running independent cascades on g
// — a stand-in for the original digg_votes file.
func SampleVotes(g *Graph, nStories int, edgeProb float64, rng *rand.Rand) ([]Vote, error) {
	return digg.SampleVotes(g, nStories, edgeProb, rng)
}

// Classical baselines.
type (
	// DKConfig parameterizes the stochastic Daley–Kendall/Maki–Thompson
	// rumor models.
	DKConfig = classic.DKConfig
	// DKResult is one stochastic realization.
	DKResult = classic.DKResult
	// DKMeanField is the deterministic Daley–Kendall limit.
	DKMeanField = classic.DKMeanField
)

// Stochastic rumor-model variants.
const (
	// DaleyKendall: spreader–spreader contact stifles both.
	DaleyKendall = classic.DaleyKendall
	// MakiThompson: only the initiating spreader is stifled.
	MakiThompson = classic.MakiThompson
)

// RunDaleyKendall simulates one realization of the classical rumor process
// with the Gillespie algorithm.
func RunDaleyKendall(cfg DKConfig, rng *rand.Rand) (*DKResult, error) {
	return classic.RunDK(cfg, rng)
}

// Spatial (reaction–diffusion) extension.
type (
	// SpatialConfig parameterizes the 1-D reaction–diffusion rumor medium.
	SpatialConfig = spatial.Config
	// SpatialModel is the discretized reaction–diffusion system.
	SpatialModel = spatial.Model
)

// Spatial boundary conditions.
const (
	// SpatialNeumann reflects at the domain ends (mass-conserving).
	SpatialNeumann = spatial.Neumann
	// SpatialPeriodic wraps the domain into a ring.
	SpatialPeriodic = spatial.Periodic
)

// NewSpatialModel builds a reaction–diffusion rumor medium.
func NewSpatialModel(cfg SpatialConfig) (*SpatialModel, error) {
	return spatial.New(cfg)
}

// Experiment reproduction.
type (
	// ExperimentConfig controls experiment fidelity and seeding.
	ExperimentConfig = experiments.Config
	// ExperimentResult is the output of one reproduced figure or table.
	ExperimentResult = experiments.Result
)

// ExperimentIDs lists every reproducible artifact (fig2a…fig4c, tabD,
// ablations, validations).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one of the paper's figures or tables.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.Run(id, cfg)
}
