package rumornet

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func facadeModel(t testing.TB) *Model {
	t.Helper()
	dist, err := PowerLawDegreeDist(1.5, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCalibratedModel(dist, 0.01, 0.1, 0.05, 0.722, OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFacadeModelLifecycle(t *testing.T) {
	m := facadeModel(t)
	if got := m.R0(); math.Abs(got-0.722) > 1e-9 {
		t.Errorf("R0 = %v, want 0.722", got)
	}
	if m.Classify() != VerdictExtinct {
		t.Errorf("verdict = %v, want extinct", m.Classify())
	}
	eq, err := m.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if eq.Positive != nil {
		t.Error("subcritical model has a positive equilibrium")
	}
	ic, err := m.UniformIC(0.1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Simulate(ic, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 100 {
		t.Errorf("trajectory too short: %d samples", tr.Len())
	}
}

func TestFacadeGraphToModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := "0 1\n1 2\n2 0\n0 2\n"
	g, _, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModelFromGraph(g, Params{
		Alpha:  0.01,
		Eps1:   0.1,
		Eps2:   0.1,
		Lambda: LambdaLinear(0.05),
		Omega:  OmegaConstant(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() < 1 {
		t.Error("no degree groups")
	}
	_ = rng
}

func TestFacadeSyntheticDiggDist(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := SyntheticDiggDist(rng)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxDegree() != 995 || d.MinDegree() != 1 {
		t.Errorf("support [%d, %d], want [1, 995]", d.MinDegree(), d.MaxDegree())
	}
}

func TestFacadeControlRoundTrip(t *testing.T) {
	dist, err := PowerLawDegreeDist(1.5, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCalibratedModel(dist, 0.01, 0.05, 0.05, 2.5, OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.UniformIC(0.05)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := OptimizeCountermeasures(m, ic, 20, ControlOptions{
		Grid:    100,
		Eps1Max: 0.5,
		Eps2Max: 0.5,
		Cost:    ControlCost{C1: 5, C2: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	bd, _, err := EvaluatePolicyCost(m, ic, pol.Schedule, ControlCost{C1: 5, C2: 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Total-pol.Cost.Total) > 1e-9 {
		t.Errorf("re-evaluated J = %v vs policy J = %v", bd.Total, pol.Cost.Total)
	}
}

func TestFacadeHomogenize(t *testing.T) {
	h, err := Homogenize(facadeModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 1 {
		t.Errorf("homogenized N = %d, want 1", h.N())
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 12 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	res, err := RunExperiment("tabD", ExperimentConfig{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "tabD" {
		t.Errorf("result ID = %q", res.ID)
	}
}

func TestFacadeDiggLoader(t *testing.T) {
	in := "0,123,10,20\n1,124,20,30\n"
	g, ids, err := LoadDiggFriends(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || len(ids) != 3 {
		t.Errorf("nodes = %d ids = %d", g.NumNodes(), len(ids))
	}
}

func TestFacadeSpatial(t *testing.T) {
	m, err := NewSpatialModel(SpatialConfig{
		Patches: 51, Length: 51, Lambda: 1, Eps2: 0.2, DI: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.SeedCenter(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Simulate(ic, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Len() < 10 {
		t.Errorf("spatial solution too short: %d samples", sol.Len())
	}
	if m.FisherSpeed(1) <= 0 {
		t.Error("supercritical medium reports zero Fisher speed")
	}
}

func TestFacadeVotes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := NewBarabasiAlbert(500, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	votes, err := SampleVotes(g, 4, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	idx := IndexVotes(votes)
	if len(idx.Stories()) != 4 {
		t.Errorf("stories = %d, want 4", len(idx.Stories()))
	}
	in := "100,1,2\n200,3,2\n"
	loaded, err := LoadDiggVotes(strings.NewReader(in))
	if err != nil || len(loaded) != 2 {
		t.Errorf("LoadDiggVotes: %v, %v", loaded, err)
	}
}

func TestFacadeDaleyKendall(t *testing.T) {
	res, err := RunDaleyKendall(DKConfig{
		N: 200, Spreaders0: 2, Beta: 1, GammaStifle: 1, Variant: DaleyKendall,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Extinct {
		t.Error("DK run did not go extinct")
	}
	if _, err := RunDaleyKendall(DKConfig{
		N: 200, Spreaders0: 2, Beta: 1, GammaStifle: 1, Variant: MakiThompson,
	}, rand.New(rand.NewSource(3))); err != nil {
		t.Errorf("MT variant: %v", err)
	}
}

func TestFacadeTargeting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := NewBarabasiAlbert(300, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	hubs, err := g.TopKByOutDegree(10)
	if err != nil || len(hubs) != 10 {
		t.Fatalf("TopKByOutDegree: %v, %v", hubs, err)
	}
	if _, err := RunABM(g, ABMConfig{
		Lambda: LambdaLinear(0.05), Omega: OmegaConstant(1),
		Eps1: 0.01, Eps2: 0.05, I0: 0.05, Dt: 0.5, Steps: 20,
		Mode: ABMQuenched, Blocked: hubs,
	}, rng); err != nil {
		t.Errorf("targeted ABM: %v", err)
	}
}

func TestFacadeGraphConstructors(t *testing.T) {
	g := NewGraph(4)
	if g.NumNodes() != 4 {
		t.Errorf("NewGraph nodes = %d", g.NumNodes())
	}
	rng := rand.New(rand.NewSource(8))
	cg, err := NewConfigurationGraph([]int{2, 1, 0, 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DegreeDistFromGraph(cg)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() < 2 {
		t.Errorf("degree groups = %d", d.N())
	}
}

func TestFacadeControlBaselines(t *testing.T) {
	dist, err := PowerLawDegreeDist(1.5, 1, 15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCalibratedModel(dist, 0.01, 0.05, 0.05, 2.5, OmegaSaturating(0.5, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := m.UniformIC(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cost := ControlCost{C1: 5, C2: 10}
	heur, err := HeuristicCountermeasures(m, ic, 15, 3, 80, 0.5, 0.5, cost)
	if err != nil {
		t.Fatal(err)
	}
	if heur.Cost.Running <= 0 {
		t.Error("heuristic with positive gain has zero running cost")
	}
	cal, err := CalibrateHeuristic(m, ic, 15, 5e-3, 80, 0.8, 0.8, cost)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := OptimizeToTarget(m, ic, 15, 5e-3, ControlOptions{
		Grid: 80, MaxIter: 200, Eps1Max: 0.8, Eps2Max: 0.8, Cost: cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost.Running >= cal.Cost.Running {
		t.Errorf("optimized running cost %v not below heuristic %v",
			opt.Cost.Running, cal.Cost.Running)
	}
	hs, err := HamiltonianSeries(m, ic, opt, ControlOptions{
		Grid: 80, Eps1Max: 0.8, Eps2Max: 0.8, Cost: cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) == 0 {
		t.Error("empty Hamiltonian series")
	}
}

func TestFacadeSyntheticDiggGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("71k-node generation in -short mode")
	}
	rng := rand.New(rand.NewSource(4))
	g, err := SyntheticDigg(rng)
	if err != nil {
		t.Fatal(err)
	}
	s := SummarizeDigg(g)
	if ok, why := s.MatchesPaper(); !ok {
		t.Errorf("synthetic Digg mismatch: %s", why)
	}
}
