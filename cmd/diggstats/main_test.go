package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFriendsCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "friends.csv")
	content := strings.Join([]string{
		"mutual,friend_date,user_id,friend_id",
		"1,100,1,2",
		"0,101,1,3",
		"0,102,2,3",
	}, "\n")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-friends", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEdgeList(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	save := filepath.Join(dir, "out.txt")
	if err := run([]string{"-edges", path, "-save", save}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(save); err != nil {
		t.Errorf("saved edge list missing: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-friends", "/does/not/exist"}); err == nil {
		t.Error("missing friends file: want error")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag: want error")
	}
}
