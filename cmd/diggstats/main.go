// Command diggstats generates (or loads) a Digg2009-scale social network
// and prints the dataset statistics the paper reports in Section V.
//
// Usage:
//
//	diggstats                     # synthetic network, compare to paper
//	diggstats -friends digg_friends.csv
//	diggstats -edges follows.txt
//	diggstats -save synthetic.txt # also dump the edge list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"rumornet/internal/cli"
	"rumornet/internal/digg"
	"rumornet/internal/graph"
)

func main() {
	os.Exit(cli.Exit("diggstats", run(os.Args[1:])))
}

func run(args []string) error {
	fs := flag.NewFlagSet("diggstats", flag.ContinueOnError)
	var (
		friends = fs.String("friends", "", "original digg_friends.csv to load")
		edges   = fs.String("edges", "", "plain edge-list file to load")
		save    = fs.String("save", "", "write the (synthetic) network as an edge list")
		seed    = fs.Int64("seed", 1, "random seed for the synthetic generator")
	)
	lf := cli.AddLogFlags(fs)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	lg, err := lf.Logger(os.Stderr)
	if err != nil {
		return err
	}
	if *friends != "" && *edges != "" {
		return cli.Usagef("-friends and -edges are mutually exclusive")
	}

	var (
		g      *graph.Graph
		source string
	)
	switch {
	case *friends != "":
		g, source, err = loadWith(*friends, "digg_friends.csv", func(f *os.File) (*graph.Graph, error) {
			gr, _, err := digg.LoadFriendsCSV(f)
			return gr, err
		})
	case *edges != "":
		g, source, err = loadWith(*edges, "edge list", func(f *os.File) (*graph.Graph, error) {
			gr, _, err := graph.ReadEdgeList(f)
			return gr, err
		})
	default:
		source = "synthetic (calibrated to the published statistics)"
		g, err = digg.Generate(rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		return err
	}

	lg.Debug("network loaded", "source", source, "nodes", g.NumNodes())
	s := digg.Summarize(g)
	fmt.Printf("source: %s\n\n", source)
	fmt.Printf("%-22s %12s %12s\n", "statistic", "measured", "paper")
	row := func(name string, got, want any) {
		fmt.Printf("%-22s %12v %12v\n", name, got, want)
	}
	row("users", s.Users, digg.PaperUsers)
	row("friendship links", s.Links, digg.PaperLinks)
	row("degree groups", s.Groups, digg.PaperGroups)
	row("min degree", s.MinDegree, digg.PaperMinDegree)
	row("max degree", s.MaxDegree, digg.PaperMaxDegree)
	row("mean degree", fmt.Sprintf("%.2f", s.MeanDegree), fmt.Sprintf("≈%.0f", digg.PaperMeanDegree))
	row("power-law exponent", fmt.Sprintf("%.2f", s.PowerLawGamma), "—")
	row("largest weak comp.", s.LargestWCC, "—")

	if ok, why := s.MatchesPaper(); ok {
		fmt.Println("\nverdict: matches every published Digg2009 statistic")
	} else {
		fmt.Printf("\nverdict: differs from the paper — %s\n", why)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return fmt.Errorf("create %s: %w", *save, err)
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			return err
		}
		fmt.Printf("edge list written to %s\n", *save)
	}
	return nil
}

func loadWith(path, kind string, load func(*os.File) (*graph.Graph, error)) (*graph.Graph, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	g, err := load(f)
	if err != nil {
		return nil, "", err
	}
	return g, kind + " " + path, nil
}
