package main

import (
	"testing"

	"rumornet/internal/cli"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-wat"}, 2},
		{"friends and edges together", []string{"-friends", "a.csv", "-edges", "b.txt"}, 2},
		{"missing friends file", []string{"-friends", "/does/not/exist"}, 1},
		{"bad log level", []string{"-log-level", "loud"}, 2},
		{"bad log format", []string{"-log-format", "yaml"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cli.Code(run(tc.args)); got != tc.code {
				t.Errorf("run(%v): exit code %d, want %d", tc.args, got, tc.code)
			}
		})
	}
}
