package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-quick", "-out", out, "fig2b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out, "fig2b.csv")); err != nil {
		t.Errorf("missing CSV: %v", err)
	}
}

func TestRunWorkersFlag(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-quick", "-workers", "2", "-out", out, "fig2a"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quick", "nope"}); err == nil {
		t.Error("unknown id: want error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag: want error")
	}
}
