package main

import (
	"testing"

	"rumornet/internal/cli"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-nope"}, 2},
		{"negative workers", []string{"-workers", "-1", "-list"}, 2},
		{"width too small", []string{"-width", "5", "-list"}, 2},
		{"height too small", []string{"-height", "1", "-list"}, 2},
		{"unknown experiment", []string{"-quick", "no-such-experiment"}, 1},
		{"bad log level", []string{"-log-level", "loud", "-list"}, 2},
		{"bad log format", []string{"-log-format", "yaml", "-list"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cli.Code(run(tc.args)); got != tc.code {
				t.Errorf("run(%v): exit code %d, want %d", tc.args, got, tc.code)
			}
		})
	}
}
