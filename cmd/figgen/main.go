// Command figgen regenerates the paper's tables and figures.
//
// Usage:
//
//	figgen [flags] [experiment-id ...]
//
// With no ids it runs every registered experiment. Each experiment prints
// an ASCII rendition of the figure plus its calibration notes and headline
// scalars, and writes the underlying series to <out>/<id>.csv.
//
// Examples:
//
//	figgen                      # everything, full fidelity
//	figgen -quick fig2a fig4c   # two figures at reduced fidelity
//	figgen -out /tmp/results -seed 7 fig3a
//	figgen -workers 4 valABM    # cap the per-experiment fan-out at 4 cores
//
// Experiments fan independent sub-runs (initial conditions, grid points,
// Monte-Carlo trials) across -workers goroutines; the output is
// bit-identical for every worker count, so -workers only changes speed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/experiments"
	"rumornet/internal/plot"
)

func main() {
	os.Exit(cli.Exit("figgen", run(os.Args[1:])))
}

func run(args []string) error {
	fs := flag.NewFlagSet("figgen", flag.ContinueOnError)
	var (
		out     = fs.String("out", "results", "directory for CSV output")
		seed    = fs.Int64("seed", 1, "random seed (experiments are deterministic per seed)")
		quick   = fs.Bool("quick", false, "reduced fidelity (fewer groups, coarser grids)")
		workers = fs.Int("workers", 0, "worker goroutines per experiment (0: all CPUs, 1: serial; output is identical for any value)")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		width   = fs.Int("width", 72, "ASCII chart width")
		height  = fs.Int("height", 16, "ASCII chart height")
	)
	lf := cli.AddLogFlags(fs)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	lg, err := lf.Logger(os.Stderr)
	if err != nil {
		return err
	}
	switch {
	case *workers < 0:
		return cli.Usagef("-workers = %d must be non-negative", *workers)
	case *width < 16 || *height < 4:
		return cli.Usagef("chart size %dx%d too small (want width ≥ 16, height ≥ 4)", *width, *height)
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	ids := fs.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	cfg := experiments.Config{Seed: *seed, Quick: *quick, Workers: *workers}

	for _, id := range ids {
		start := time.Now()
		lg.Debug("experiment started", "id", id, "quick", *quick, "workers", *workers)
		res, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		lg.Debug("experiment finished", "id", id,
			"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond))
		fmt.Printf("==== %s — %s (%.1fs)\n\n", res.ID, res.Title, time.Since(start).Seconds())

		chart, err := plot.ASCII("", *width, *height, res.Series...)
		if err != nil {
			return fmt.Errorf("%s: render: %w", id, err)
		}
		fmt.Println(chart)

		if len(res.Scalars) > 0 {
			keys := make([]string, 0, len(res.Scalars))
			for k := range res.Scalars {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %-40s %g\n", k, res.Scalars[k])
			}
		}
		for _, note := range res.Notes {
			fmt.Printf("  note: %s\n", note)
		}

		path := filepath.Join(*out, res.ID+".csv")
		if err := plot.SaveCSV(path, res.Series...); err != nil {
			return err
		}
		fmt.Printf("  csv: %s\n\n", path)
	}
	return nil
}
