package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rumornet/internal/cli"
)

// syncBuffer serializes writes: the daemon's structured logger writes from
// worker goroutines while run() writes its own lifecycle lines, and the
// test reads the result.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-nope"}, 2},
		{"positional args", []string{"extra"}, 2},
		{"negative workers", []string{"-workers", "-1"}, 2},
		{"negative inner workers", []string{"-inner-workers", "-1"}, 2},
		{"zero queue", []string{"-queue", "0"}, 2},
		{"zero timeout", []string{"-timeout", "0s"}, 2},
		{"timeout above cap", []string{"-timeout", "20m", "-max-timeout", "10m"}, 2},
		{"negative drain grace", []string{"-drain-grace", "-1s"}, 2},
		{"unparseable address", []string{"-addr", "999.999.999.999:1"}, 1},
		{"bad log level", []string{"-log-level", "loud"}, 2},
		{"bad log format", []string{"-log-format", "yaml"}, 2},
		{"negative progress log every", []string{"-progress-log-every", "-1"}, 2},
		{"zero journal", []string{"-journal", "0"}, 2},
		{"zero sse heartbeat", []string{"-sse-heartbeat", "0s"}, 2},
		{"negative journal max bytes", []string{"-journal-max-bytes", "-1"}, 2},
		{"negative store max bytes", []string{"-store-max-bytes", "-1"}, 2},
		{"bad wal sync", []string{"-wal-sync", "sometimes"}, 2},
		{"unknown mode", []string{"-mode", "leader"}, 2},
		{"worker without coordinator", []string{"-mode", "worker"}, 2},
		{"coordinator flag outside worker mode", []string{"-coordinator", "http://localhost:8080"}, 2},
		{"zero lease ttl", []string{"-mode", "coordinator", "-lease-ttl", "0s"}, 2},
		{"zero max attempts", []string{"-mode", "coordinator", "-max-attempts", "0"}, 2},
		{"negative worker liveness", []string{"-mode", "coordinator", "-worker-liveness", "-1s"}, 2},
		{"negative heartbeat", []string{"-mode", "worker", "-coordinator", "http://h", "-heartbeat", "-1s"}, 2},
		{"zero poll min", []string{"-mode", "worker", "-coordinator", "http://h", "-poll-min", "0s"}, 2},
		{"poll max below poll min", []string{"-mode", "worker", "-coordinator", "http://h", "-poll-min", "1s", "-poll-max", "10ms"}, 2},
		{"unwritable data dir", []string{"-addr", "127.0.0.1:0", "-data-dir", "/proc/no-such/data"}, 1},
		{"unwritable journal file", []string{"-addr", "127.0.0.1:0", "-journal-file", "/no/such/dir/journal.jsonl"}, 1},
		{"unparseable debug address", []string{"-addr", "127.0.0.1:0", "-debug-addr", "999.999.999.999:1"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard, nil)
			if got := cli.Code(err); got != tc.code {
				t.Errorf("run(%v): exit code %d (err %v), want %d", tc.args, got, err, tc.code)
			}
		})
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, performs a
// submit→poll round trip over real TCP, then stops it via context
// cancellation (the same path SIGTERM takes) and checks the graceful exit.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	var out syncBuffer
	journalFile := filepath.Join(t.TempDir(), "journal.jsonl")
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
			"-workers", "2", "-drain-grace", "10s", "-log-format", "json", "-log-level", "debug",
			"-journal-file", journalFile},
			&out, func(a net.Addr) { addrCh <- a })
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// Register a small scenario and run one job end to end.
	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	if code, raw := post("/v1/scenarios", `{"name":"tiny","degrees":[2,4,8],"probs":[0.5,0.3,0.2]}`); code != http.StatusCreated {
		t.Fatalf("register scenario: %d %s", code, raw)
	}
	code, raw := post("/v1/jobs", `{"type":"threshold","scenario":"tiny"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.Status != "succeeded" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (%s)", job.Status, job.Error)
		}
		if job.Status == "failed" || job.Status == "cancelled" {
			t.Fatalf("job %s: %s", job.Status, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
	}

	// The API listener exposes Prometheus metrics that now reflect the job.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `rumor_jobs_finished_total{status="succeeded"} 1`) {
		t.Errorf("/metrics missing finished-job count:\n%s", metrics)
	}

	// The -debug-addr listener (parsed from the startup line, since it binds
	// an ephemeral port too) serves pprof and a /metrics mirror.
	dbase := ""
	for _, line := range strings.Split(out.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "rumord: debug listener on "); ok {
			dbase = "http://" + rest[:strings.Index(rest, " ")]
		}
	}
	if dbase == "" {
		t.Fatalf("no debug-listener line in output:\n%s", out.String())
	}
	for _, path := range []string{"/debug/pprof/cmdline", "/metrics", "/debug/events"} {
		resp, err := http.Get(dbase + path)
		if err != nil {
			t.Fatalf("debug %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("debug %s: status %d", path, resp.StatusCode)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// -journal-file mirrored the job's flight-recorder entries as JSON lines.
	if raw, err := os.ReadFile(journalFile); err != nil {
		t.Errorf("journal file: %v", err)
	} else if s := string(raw); !strings.Contains(s, `"queued"`) || !strings.Contains(s, "finished: succeeded") {
		t.Errorf("journal file missing lifecycle entries:\n%s", s)
	}
	logged := out.String()
	for _, want := range []string{"listening on", "bye", `"msg":"job started"`, `"msg":"job finished"`} {
		if !strings.Contains(logged, want) {
			t.Errorf("daemon output missing %q:\n%s", want, logged)
		}
	}
}

// bootDaemon starts run() with the given extra args on an ephemeral port and
// returns the base URL, the error channel, and the cancel that triggers the
// graceful-shutdown path.
func bootDaemon(t *testing.T, extra ...string) (string, chan error, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-grace", "10s"}, extra...)
	go func() {
		errCh <- run(ctx, args, io.Discard, func(a net.Addr) { addrCh <- a })
	}()
	select {
	case a := <-addrCh:
		return "http://" + a.String(), errCh, cancel
	case err := <-errCh:
		cancel()
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return "", nil, nil
}

// TestDaemonPersistenceRestart runs the durable-store path through the real
// binary wiring: a daemon with -data-dir completes a job, shuts down
// gracefully, and a second daemon over the same directory answers the same
// request synchronously (HTTP 200, cache_hit) from the recovered store.
func TestDaemonPersistenceRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	const jobReq = `{"type":"threshold","params":{"lambda0":0.02}}`

	post := func(base, path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	stop := func(errCh chan error, cancel context.CancelFunc) {
		t.Helper()
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}

	base, errCh, cancel := bootDaemon(t, "-data-dir", dataDir, "-wal-sync", "none")
	code, raw := post(base, "/v1/jobs", jobReq)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	var job struct {
		ID       string `json:"id"`
		Status   string `json:"status"`
		Error    string `json:"error"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.Status != "succeeded" {
		if time.Now().After(deadline) || job.Status == "failed" {
			t.Fatalf("job stuck in %q (%s)", job.Status, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
	}
	stop(errCh, cancel)

	base2, errCh2, cancel2 := bootDaemon(t, "-data-dir", dataDir, "-wal-sync", "none")
	code, raw = post(base2, "/v1/jobs", jobReq)
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	// 200, not 202: the handler reports terminal submissions as complete, and
	// the recovered store answers this one without recomputing.
	if code != http.StatusOK || !job.CacheHit || job.Status != "succeeded" {
		t.Fatalf("resubmit after restart: %d cache_hit=%v status=%s (%s), want 200 + cache hit",
			code, job.CacheHit, job.Status, raw)
	}

	// The stats surface confirms the store is live and recovered the result.
	resp, err := http.Get(base2 + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsRaw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Store *struct {
			RecoveredResults int64 `json:"recovered_results"`
		} `json:"store"`
	}
	if err := json.Unmarshal(statsRaw, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil || stats.Store.RecoveredResults < 1 {
		t.Errorf("stats store section = %s, want recovered_results >= 1", statsRaw)
	}
	stop(errCh2, cancel2)
}

// TestJournalRotation forces the -journal-file sink over a tiny
// -journal-max-bytes so the daemon rotates it to .1 mid-run.
func TestJournalRotation(t *testing.T) {
	journalFile := filepath.Join(t.TempDir(), "journal.jsonl")
	base, errCh, cancel := bootDaemon(t,
		"-journal-file", journalFile, "-journal-max-bytes", "512", "-workers", "2")
	defer cancel()

	post := func(body string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Each job mirrors several journal lines; a handful blows past 512 bytes.
	for seed := 1; seed <= 8; seed++ {
		post(fmt.Sprintf(`{"type":"threshold","params":{"lambda0":0.02,"seed":%d}}`, seed))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(journalFile + ".1"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never rotated to .1")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	cur, err := os.ReadFile(journalFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) > 512+256 {
		t.Errorf("active journal grew to %d bytes despite the 512-byte cap", len(cur))
	}
}

// TestClusterLifecycle boots a coordinator and a worker through the real
// CLI wiring: the coordinator serves the public API without local execution,
// the worker leases the job over the internal API and uploads the result,
// and both drain gracefully on context cancellation (the SIGTERM path).
func TestClusterLifecycle(t *testing.T) {
	base, errCh, cancel := bootDaemon(t, "-mode", "coordinator", "-lease-ttl", "2s")
	defer cancel()

	// With no worker yet, a queued job must flip readiness to degraded.
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"threshold","params":{"lambda0":0.02}}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, raw)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
		Worker string `json:"worker"`
	}
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	if resp, err = http.Get(base + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz with queued work and no workers: %d, want 503", resp.StatusCode)
	}

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	wErr := make(chan error, 1)
	go func() {
		wErr <- run(wctx, []string{"-mode", "worker", "-coordinator", base,
			"-worker-id", "w-cli", "-poll-min", "5ms", "-poll-max", "50ms"},
			io.Discard, nil)
	}()

	deadline := time.Now().Add(30 * time.Second)
	for job.Status != "succeeded" {
		if time.Now().After(deadline) || job.Status == "failed" || job.Status == "cancelled" {
			t.Fatalf("job stuck in %q (%s)", job.Status, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
	}
	if job.Worker != "w-cli" {
		t.Errorf("completed job carries worker %q, want %q", job.Worker, "w-cli")
	}

	// The registry lists the live worker, and readiness has recovered.
	if resp, err = http.Get(base + "/v1/workers"); err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var reg struct {
		Count   int `json:"count"`
		Workers []struct {
			ID            string `json:"id"`
			Live          bool   `json:"live"`
			JobsCompleted int64  `json:"jobs_completed"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(raw, &reg); err != nil {
		t.Fatal(err)
	}
	if reg.Count != 1 || reg.Workers[0].ID != "w-cli" || !reg.Workers[0].Live || reg.Workers[0].JobsCompleted != 1 {
		t.Errorf("worker registry = %s, want one live w-cli with 1 completed job", raw)
	}
	if resp, err = http.Get(base + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz with a live worker: %d, want 200", resp.StatusCode)
	}

	wcancel()
	select {
	case err := <-wErr:
		if err != nil {
			t.Fatalf("worker shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not shut down")
	}
	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("coordinator shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
}

func TestListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run(context.Background(), []string{"-addr", ln.Addr().String()}, io.Discard, nil)
	if err == nil || cli.Code(err) != 1 {
		t.Fatalf("bind to occupied port: err %v, want runtime failure", err)
	}
}
