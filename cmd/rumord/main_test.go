package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"rumornet/internal/cli"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-nope"}, 2},
		{"positional args", []string{"extra"}, 2},
		{"negative workers", []string{"-workers", "-1"}, 2},
		{"negative inner workers", []string{"-inner-workers", "-1"}, 2},
		{"zero queue", []string{"-queue", "0"}, 2},
		{"zero timeout", []string{"-timeout", "0s"}, 2},
		{"timeout above cap", []string{"-timeout", "20m", "-max-timeout", "10m"}, 2},
		{"negative drain grace", []string{"-drain-grace", "-1s"}, 2},
		{"unparseable address", []string{"-addr", "999.999.999.999:1"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(context.Background(), tc.args, io.Discard, nil)
			if got := cli.Code(err); got != tc.code {
				t.Errorf("run(%v): exit code %d (err %v), want %d", tc.args, got, err, tc.code)
			}
		})
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, performs a
// submit→poll round trip over real TCP, then stops it via context
// cancellation (the same path SIGTERM takes) and checks the graceful exit.
func TestDaemonLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	var out strings.Builder
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain-grace", "10s"},
			&out, func(a net.Addr) { addrCh <- a })
	}()

	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-errCh:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// Register a small scenario and run one job end to end.
	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw
	}
	if code, raw := post("/v1/scenarios", `{"name":"tiny","degrees":[2,4,8],"probs":[0.5,0.3,0.2]}`); code != http.StatusCreated {
		t.Fatalf("register scenario: %d %s", code, raw)
	}
	code, raw := post("/v1/jobs", `{"type":"threshold","scenario":"tiny"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, raw)
	}
	var job struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(raw, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for job.Status != "succeeded" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (%s)", job.Status, job.Error)
		}
		if job.Status == "failed" || job.Status == "cancelled" {
			t.Fatalf("job %s: %s", job.Status, job.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, job.ID))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &job); err != nil {
			t.Fatal(err)
		}
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "listening on") || !strings.Contains(out.String(), "bye") {
		t.Errorf("daemon log missing lifecycle lines:\n%s", out.String())
	}
}

func TestListenFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run(context.Background(), []string{"-addr", ln.Addr().String()}, io.Discard, nil)
	if err == nil || cli.Code(err) != 1 {
		t.Fatalf("bind to occupied port: err %v, want runtime failure", err)
	}
}
