// Command rumord serves rumor-propagation simulations over a JSON HTTP API.
//
// Usage:
//
//	rumord [flags]
//
// The daemon keeps the calibrated synthetic Digg2009 scenario resident,
// accepts uploaded degree-distribution tables, and executes ODE, threshold,
// agent-based and FBSM control-optimization jobs asynchronously on a bounded
// worker pool with a content-addressed result cache:
//
//	rumord -addr :8080 &
//	curl -s localhost:8080/v1/scenarios | jq
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"type":"ode","params":{"r0":0.7,"tf":150}}' | jq -r .id
//	curl -s localhost:8080/v1/jobs/j-000001 | jq
//
// SIGINT/SIGTERM stop intake and let queued and running jobs finish, bounded
// by -drain-grace; jobs still running after the grace period are cancelled.
//
// Observability: GET /metrics serves Prometheus text exposition on the API
// listener; -log-level/-log-format configure the structured log stream; and
// -debug-addr starts a second, opt-in listener with net/http/pprof profiles,
// a /metrics mirror and a /debug/events flight-recorder dump:
//
//	rumord -addr :8080 -debug-addr 127.0.0.1:6060 -log-format json &
//	curl -s localhost:8080/metrics | grep rumor_queue_depth
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	curl -s http://127.0.0.1:6060/debug/events | jq .spans
//
// Every job records its lifecycle, solver checkpoints and invariant
// violations into a per-job ring (-journal entries deep, optionally mirrored
// as JSON lines to -journal-file, rotated at -journal-max-bytes);
// GET /v1/jobs/{id}/events replays the ring and follows live over
// Server-Sent Events with -sse-heartbeat keep-alives. Incoming W3C
// traceparent headers parent the request/job/stage spans dumped at
// /debug/events.
//
// Persistence: -data-dir makes the daemon durable. Accepted jobs are logged
// to a write-ahead log (-wal-sync selects the fsync policy) and completed
// results persisted to a content-addressed store bounded by
// -store-max-bytes; a restart over the same directory re-enqueues the jobs
// a crash interrupted and serves completed results without recomputing:
//
//	rumord -addr :8080 -data-dir /var/lib/rumord &
//	curl -s localhost:8080/v1/stats | jq .store
//
// Clustering: -mode splits the daemon into a coordinator (public API, queue,
// WAL, result store; no local execution) and stateless workers that lease
// jobs over the coordinator's internal API, heartbeat progress back, and
// upload results. -mode standalone (the default) is the single-node pool
// described above:
//
//	rumord -mode coordinator -addr :8080 -data-dir /var/lib/rumord &
//	rumord -mode worker -coordinator http://localhost:8080 &
//	rumord -mode worker -coordinator http://localhost:8080 &
//	curl -s localhost:8080/v1/workers | jq
//
// A worker killed mid-job is harmless: its lease expires (-lease-ttl) and
// the coordinator requeues the job (at most -max-attempts grants) onto a
// surviving worker. A SIGTERM'd worker finishes its leased job, uploads the
// result, deregisters and exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/cluster/worker"
	"rumornet/internal/obs"
	"rumornet/internal/service"
	"rumornet/internal/store"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.Exit("rumord", run(ctx, os.Args[1:], os.Stdout, nil)))
}

// run starts the daemon and blocks until ctx is cancelled or the listener
// fails. The optional ready callback receives the bound address once the
// server is listening (tests use it to learn an ephemeral port).
func run(ctx context.Context, args []string, out io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("rumord", flag.ContinueOnError)
	var (
		mode         = fs.String("mode", "standalone", `"standalone" (in-process pool), "coordinator" (serve API, lease jobs to workers) or "worker" (execute jobs for -coordinator)`)
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "job-executing goroutines (0: all CPUs)")
		innerWorkers = fs.Int("inner-workers", 1, "per-job fan-out goroutines for ABM trials (0: all CPUs)")
		queueDepth   = fs.Int("queue", 64, "bounded job-queue depth; submissions beyond it get 503")
		cacheSize    = fs.Int("cache", 256, "result-cache entries (-1 disables caching)")
		timeout      = fs.Duration("timeout", 60*time.Second, "default per-job timeout")
		maxTimeout   = fs.Duration("max-timeout", 10*time.Minute, "cap on client-requested per-job timeouts")
		drainGrace   = fs.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight jobs")
		seed         = fs.Int64("seed", 1, "seed for the built-in synthetic Digg2009 scenario")
		debugAddr    = fs.String("debug-addr", "", "optional second listener serving /debug/pprof/, /metrics and /debug/events (empty: disabled)")
		progEvery    = fs.Int("progress-log-every", 25, "solver progress events between debug-level log records per job (0: disable)")
		journalSize  = fs.Int("journal", 256, "per-job flight-recorder ring capacity in entries")
		journalFile  = fs.String("journal-file", "", "append every journal entry as a JSON line to this file (empty: disabled)")
		journalMax   = fs.Int64("journal-max-bytes", 64<<20, "rotate -journal-file to .1 once it would exceed this size (0: never rotate)")
		sseHeartbeat = fs.Duration("sse-heartbeat", 15*time.Second, "idle keep-alive cadence of the /v1/jobs/{id}/events stream")
		dataDir      = fs.String("data-dir", "", "durable store directory: job WAL + result blobs, replayed on restart (empty: in-memory only)")
		satBudget    = fs.Duration("saturation-budget", 2*time.Second, "queue-wait p99 budget: exceeding it over -saturation-window flips /readyz degraded and rumor_saturated (0: disable)")
		satWindow    = fs.Duration("saturation-window", 30*time.Second, "sliding window the saturation detector evaluates the queue-wait p99 over")
		walSync      = fs.String("wal-sync", "100ms", `WAL durability with -data-dir: "always", "none", or a batched-fsync interval`)
		storeMax     = fs.Int64("store-max-bytes", 1<<30, "result-store size bound, oldest blobs evicted first (0: unbounded)")

		// Coordinator-mode flags.
		leaseTTL       = fs.Duration("lease-ttl", 15*time.Second, "coordinator: lease duration; a worker silent this long forfeits its job")
		maxAttempts    = fs.Int("max-attempts", 3, "coordinator: lease grants per job before it fails terminally (poison-job guard)")
		workerLiveness = fs.Duration("worker-liveness", 0, "coordinator: window within which a worker must poll or heartbeat to count as live (0: 3x -lease-ttl)")

		// Worker-mode flags.
		coordinator = fs.String("coordinator", "", "worker: coordinator base URL, e.g. http://host:8080 (required in -mode worker)")
		workerID    = fs.String("worker-id", "", "worker: registry name (default: w-<hostname>-<pid>)")
		heartbeat   = fs.Duration("heartbeat", 0, "worker: lease-renewal cadence (0: a third of the granted TTL)")
		pollMin     = fs.Duration("poll-min", 50*time.Millisecond, "worker: minimum lease-poll backoff on an empty queue")
		pollMax     = fs.Duration("poll-max", 2*time.Second, "worker: maximum lease-poll backoff on an empty queue")
	)
	lf := cli.AddLogFlags(fs)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	lg, err := lf.Logger(out)
	if err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	switch *mode {
	case "standalone", "coordinator", "worker":
	default:
		return cli.Usagef(`-mode = %q must be "standalone", "coordinator" or "worker"`, *mode)
	}
	if *mode == "worker" && *coordinator == "" {
		return cli.Usagef("-mode worker requires -coordinator")
	}
	if *mode != "worker" && *coordinator != "" {
		return cli.Usagef("-coordinator only applies in -mode worker")
	}
	switch {
	case *workers < 0:
		return cli.Usagef("-workers = %d must be non-negative", *workers)
	case *innerWorkers < 0:
		return cli.Usagef("-inner-workers = %d must be non-negative", *innerWorkers)
	case *queueDepth < 1:
		return cli.Usagef("-queue = %d must be at least 1", *queueDepth)
	case *timeout <= 0:
		return cli.Usagef("-timeout = %s must be positive", *timeout)
	case *maxTimeout <= 0:
		return cli.Usagef("-max-timeout = %s must be positive", *maxTimeout)
	case *timeout > *maxTimeout:
		return cli.Usagef("-timeout = %s exceeds -max-timeout = %s", *timeout, *maxTimeout)
	case *drainGrace < 0:
		return cli.Usagef("-drain-grace = %s must be non-negative", *drainGrace)
	case *progEvery < 0:
		return cli.Usagef("-progress-log-every = %d must be non-negative", *progEvery)
	case *journalSize < 1:
		return cli.Usagef("-journal = %d must be at least 1", *journalSize)
	case *journalMax < 0:
		return cli.Usagef("-journal-max-bytes = %d must be non-negative", *journalMax)
	case *sseHeartbeat <= 0:
		return cli.Usagef("-sse-heartbeat = %s must be positive", *sseHeartbeat)
	case *storeMax < 0:
		return cli.Usagef("-store-max-bytes = %d must be non-negative", *storeMax)
	case *satBudget < 0:
		return cli.Usagef("-saturation-budget = %s must be non-negative", *satBudget)
	case *satWindow <= 0:
		return cli.Usagef("-saturation-window = %s must be positive", *satWindow)
	case *leaseTTL <= 0:
		return cli.Usagef("-lease-ttl = %s must be positive", *leaseTTL)
	case *maxAttempts < 1:
		return cli.Usagef("-max-attempts = %d must be at least 1", *maxAttempts)
	case *workerLiveness < 0:
		return cli.Usagef("-worker-liveness = %s must be non-negative", *workerLiveness)
	case *heartbeat < 0:
		return cli.Usagef("-heartbeat = %s must be non-negative", *heartbeat)
	case *pollMin <= 0:
		return cli.Usagef("-poll-min = %s must be positive", *pollMin)
	case *pollMax < *pollMin:
		return cli.Usagef("-poll-max = %s must be at least -poll-min = %s", *pollMax, *pollMin)
	}

	// A worker node is a client, not a server: no API listener, no store,
	// no queue. It loops leasing jobs from the coordinator until ctx
	// cancels, then finishes its current job, deregisters and exits. Its
	// registry (solver histograms, runtime gauges) is relayed to the
	// coordinator on heartbeats; -debug-addr additionally serves the same
	// registry and pprof locally for on-node debugging.
	if *mode == "worker" {
		inner := *innerWorkers
		if inner == 0 {
			inner = runtime.NumCPU()
		}
		reg := obs.NewRegistry()
		if *debugAddr != "" {
			dln, err := net.Listen("tcp", *debugAddr)
			if err != nil {
				return fmt.Errorf("debug listen: %w", err)
			}
			dmux := http.NewServeMux()
			dmux.HandleFunc("/debug/pprof/", pprof.Index)
			dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			dmux.Handle("/metrics", obs.Handler(reg))
			dsrv := &http.Server{Handler: dmux}
			defer dsrv.Close()
			fmt.Fprintf(out, "rumord: debug listener on %s (pprof + metrics)\n", dln.Addr())
			go dsrv.Serve(dln)
		}
		fmt.Fprintf(out, "rumord: worker polling %s (inner-workers %d)\n", *coordinator, inner)
		if ready != nil {
			ready(nil)
		}
		err := worker.Run(ctx, worker.Options{
			Coordinator:  *coordinator,
			ID:           *workerID,
			InnerWorkers: inner,
			PollMin:      *pollMin,
			PollMax:      *pollMax,
			Heartbeat:    *heartbeat,
			Logger:       lg,
			Registry:     reg,
		})
		if err == nil {
			fmt.Fprintln(out, "rumord: bye")
		}
		return err
	}
	syncMode, syncInterval, err := store.ParseSyncMode(*walSync)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	logEvery := *progEvery
	if logEvery == 0 {
		logEvery = -1 // Config treats 0 as "use the default"; negative disables.
	}
	budget := *satBudget
	if budget == 0 {
		budget = -1 // same flag-zero-disables convention as -progress-log-every
	}

	// The journal mirror appends across restarts (history extends, never
	// truncates) and rotates to .1 at the size cap so a chatty daemon
	// cannot fill the disk.
	var journalSink io.Writer
	if *journalFile != "" {
		w, err := store.NewRotatingWriter(*journalFile, *journalMax)
		if err != nil {
			return fmt.Errorf("journal file: %w", err)
		}
		defer w.Close()
		journalSink = w
	}

	resultMax := *storeMax
	if resultMax == 0 {
		resultMax = -1 // flag 0 = unbounded; store.Options 0 = default bound
	}
	svc, err := service.New(service.Config{
		Workers:          *workers,
		InnerWorkers:     *innerWorkers,
		QueueDepth:       *queueDepth,
		CacheEntries:     *cacheSize,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		Seed:             *seed,
		Logger:           lg,
		ProgressLogEvery: logEvery,
		JournalEntries:   *journalSize,
		JournalSink:      journalSink,
		SSEHeartbeat:     *sseHeartbeat,
		StoreDir:         *dataDir,
		SaturationBudget: budget,
		SaturationWindow: *satWindow,
		StoreOptions: store.Options{
			SyncMode:       syncMode,
			SyncInterval:   syncInterval,
			ResultMaxBytes: resultMax,
		},
		Cluster: service.ClusterConfig{
			Enabled:        *mode == "coordinator",
			LeaseTTL:       *leaseTTL,
			MaxAttempts:    *maxAttempts,
			WorkerLiveness: *workerLiveness,
		},
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	defer ln.Close() // no-op once Serve/Shutdown owns it; closes it on early error returns
	srv := &http.Server{Handler: svc.Handler()}
	if *mode == "coordinator" {
		fmt.Fprintf(out, "rumord: coordinator listening on %s (lease-ttl %s, max-attempts %d, queue %d, cache %d)\n",
			ln.Addr(), *leaseTTL, *maxAttempts, *queueDepth, *cacheSize)
	} else {
		fmt.Fprintf(out, "rumord: listening on %s (%d workers, queue %d, cache %d)\n",
			ln.Addr(), svc.Stats().Workers, *queueDepth, *cacheSize)
	}

	// The debug listener is opt-in and meant to stay private (bind it to
	// loopback): pprof exposes heap contents and /metrics skips the API
	// middleware. It shuts down abruptly with the process — profiles are
	// diagnostics, not clients worth draining for.
	var dsrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listen: %w", err)
		}
		dsrv = &http.Server{Handler: debugMux(svc)}
		defer dsrv.Close()
		fmt.Fprintf(out, "rumord: debug listener on %s (pprof + metrics + events)\n", dln.Addr())
		go dsrv.Serve(dln)
	}

	if ready != nil {
		ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop intake, finish queued and in-flight jobs, then
	// stop the HTTP server; cancel whatever is left when the grace expires.
	fmt.Fprintf(out, "rumord: shutting down, draining for up to %s\n", *drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := svc.Drain(grace); err != nil {
		fmt.Fprintf(out, "rumord: %v; cancelling remaining jobs\n", err)
	}
	if err := srv.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "rumord: bye")
	return nil
}

// debugMux wires the pprof handlers onto an explicit mux (avoiding the
// package's http.DefaultServeMux side registration) next to a mirror of
// the Prometheus endpoint and the flight-recorder/span dump.
func debugMux(svc *service.Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", svc.MetricsHandler())
	mux.Handle("/debug/events", svc.EventsDumpHandler())
	return mux
}
