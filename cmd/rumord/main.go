// Command rumord serves rumor-propagation simulations over a JSON HTTP API.
//
// Usage:
//
//	rumord [flags]
//
// The daemon keeps the calibrated synthetic Digg2009 scenario resident,
// accepts uploaded degree-distribution tables, and executes ODE, threshold,
// agent-based and FBSM control-optimization jobs asynchronously on a bounded
// worker pool with a content-addressed result cache:
//
//	rumord -addr :8080 &
//	curl -s localhost:8080/v1/scenarios | jq
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"type":"ode","params":{"r0":0.7,"tf":150}}' | jq -r .id
//	curl -s localhost:8080/v1/jobs/j-000001 | jq
//
// SIGINT/SIGTERM stop intake and let queued and running jobs finish, bounded
// by -drain-grace; jobs still running after the grace period are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(cli.Exit("rumord", run(ctx, os.Args[1:], os.Stdout, nil)))
}

// run starts the daemon and blocks until ctx is cancelled or the listener
// fails. The optional ready callback receives the bound address once the
// server is listening (tests use it to learn an ephemeral port).
func run(ctx context.Context, args []string, out io.Writer, ready func(net.Addr)) error {
	fs := flag.NewFlagSet("rumord", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "job-executing goroutines (0: all CPUs)")
		innerWorkers = fs.Int("inner-workers", 1, "per-job fan-out goroutines for ABM trials (0: all CPUs)")
		queueDepth   = fs.Int("queue", 64, "bounded job-queue depth; submissions beyond it get 503")
		cacheSize    = fs.Int("cache", 256, "result-cache entries (-1 disables caching)")
		timeout      = fs.Duration("timeout", 60*time.Second, "default per-job timeout")
		maxTimeout   = fs.Duration("max-timeout", 10*time.Minute, "cap on client-requested per-job timeouts")
		drainGrace   = fs.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight jobs")
		seed         = fs.Int64("seed", 1, "seed for the built-in synthetic Digg2009 scenario")
	)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("unexpected arguments: %v", fs.Args())
	}
	switch {
	case *workers < 0:
		return cli.Usagef("-workers = %d must be non-negative", *workers)
	case *innerWorkers < 0:
		return cli.Usagef("-inner-workers = %d must be non-negative", *innerWorkers)
	case *queueDepth < 1:
		return cli.Usagef("-queue = %d must be at least 1", *queueDepth)
	case *timeout <= 0:
		return cli.Usagef("-timeout = %s must be positive", *timeout)
	case *maxTimeout <= 0:
		return cli.Usagef("-max-timeout = %s must be positive", *maxTimeout)
	case *timeout > *maxTimeout:
		return cli.Usagef("-timeout = %s exceeds -max-timeout = %s", *timeout, *maxTimeout)
	case *drainGrace < 0:
		return cli.Usagef("-drain-grace = %s must be non-negative", *drainGrace)
	}

	svc, err := service.New(service.Config{
		Workers:        *workers,
		InnerWorkers:   *innerWorkers,
		QueueDepth:     *queueDepth,
		CacheEntries:   *cacheSize,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(out, "rumord: listening on %s (%d workers, queue %d, cache %d)\n",
		ln.Addr(), svc.Stats().Workers, *queueDepth, *cacheSize)
	if ready != nil {
		ready(ln.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop intake, finish queued and in-flight jobs, then
	// stop the HTTP server; cancel whatever is left when the grace expires.
	fmt.Fprintf(out, "rumord: shutting down, draining for up to %s\n", *drainGrace)
	grace, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := svc.Drain(grace); err != nil {
		fmt.Fprintf(out, "rumord: %v; cancelling remaining jobs\n", err)
	}
	if err := srv.Shutdown(grace); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(out, "rumord: bye")
	return nil
}
