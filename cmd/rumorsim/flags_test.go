package main

import (
	"testing"

	"rumornet/internal/cli"
)

// TestFlagValidation checks that bad flag values exit with the usage code
// (2), help exits clean (0), and runtime failures exit 1.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help", []string{"-h"}, 0},
		{"unknown flag", []string{"-no-such-flag"}, 2},
		{"negative tf", []string{"-tf", "-5"}, 2},
		{"zero tf", []string{"-tf", "0"}, 2},
		{"i0 too big", []string{"-i0", "1.5"}, 2},
		{"i0 zero", []string{"-i0", "0"}, 2},
		{"negative workers", []string{"-workers", "-1"}, 2},
		{"negative abm trials", []string{"-abm-trials", "-2"}, 2},
		{"abm nodes too small", []string{"-abm-trials", "1", "-abm-nodes", "1"}, 2},
		{"missing edge file", []string{"-edges", "/does/not/exist"}, 1},
		{"bad log level", []string{"-log-level", "loud"}, 2},
		{"bad log format", []string{"-log-format", "yaml"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cli.Code(run(tc.args)); got != tc.code {
				t.Errorf("run(%v): exit code %d, want %d", tc.args, got, tc.code)
			}
		})
	}
}
