// Command rumorsim simulates rumor propagation under the heterogeneous SIR
// model and reports the critical-condition analysis (Theorems 1–5).
//
// Usage:
//
//	rumorsim [flags]
//
// The network is either the calibrated synthetic Digg2009 distribution
// (default), an analytic power law (-gamma/-kmin/-kmax), or a degree
// distribution read from an edge-list file (-edges).
//
// Examples:
//
//	rumorsim -alpha 0.01 -eps1 0.2 -eps2 0.05 -r0 0.722 -tf 150
//	rumorsim -gamma 2.1 -kmax 200 -lambda0 0.002 -tf 300
//	rumorsim -edges follows.txt -lambda0 0.001
//	rumorsim -r0 2.1661 -tf 80 -abm-trials 4 -workers 4
//
// With -abm-trials > 0 the mean-field prediction is cross-validated against
// an agent-based Monte-Carlo simulation on an explicit graph realized from
// the same degree distribution; -workers bounds the goroutines used for the
// trial fan-out and the per-step transition sweep (the sampled trajectories
// are bit-identical for every worker count).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"sort"

	"rumornet/internal/abm"
	"rumornet/internal/cli"
	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/graph"
	"rumornet/internal/obs"
	"rumornet/internal/plot"
)

func main() {
	os.Exit(cli.Exit("rumorsim", run(os.Args[1:])))
}

func run(args []string) error {
	fs := flag.NewFlagSet("rumorsim", flag.ContinueOnError)
	var (
		alpha   = fs.Float64("alpha", 0.01, "rate of new individuals entering the network")
		eps1    = fs.Float64("eps1", 0.2, "immunization (spread-truth) rate")
		eps2    = fs.Float64("eps2", 0.05, "blocking rate")
		r0      = fs.Float64("r0", 0, "calibrate λ(k) = scale·k so the threshold equals this value (0: use -lambda0)")
		lambda0 = fs.Float64("lambda0", 0.001, "acceptance-rate scale λ(k) = lambda0·k (ignored when -r0 is set)")
		i0      = fs.Float64("i0", 0.1, "initial infected density per group")
		tf      = fs.Float64("tf", 150, "simulation horizon")
		seed    = fs.Int64("seed", 1, "random seed")

		gamma = fs.Float64("gamma", 0, "power-law exponent (0: synthetic Digg2009)")
		kmin  = fs.Int("kmin", 1, "minimum degree for -gamma")
		kmax  = fs.Int("kmax", 100, "maximum degree for -gamma")
		edges = fs.String("edges", "", "edge-list file to derive the degree distribution from")

		abmTrials = fs.Int("abm-trials", 0, "agent-based Monte-Carlo trials cross-validating the ODE (0: skip)")
		abmNodes  = fs.Int("abm-nodes", 20000, "agents in the synthetic validation graph for -abm-trials")
		workers   = fs.Int("workers", 0, "worker goroutines for the ABM fan-out (0: all CPUs, 1: serial; output is identical for any value)")
	)
	lf := cli.AddLogFlags(fs)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	lg, err := lf.Logger(os.Stderr)
	if err != nil {
		return err
	}
	switch {
	case *tf <= 0:
		return cli.Usagef("-tf = %g must be positive", *tf)
	case *i0 <= 0 || *i0 >= 1:
		return cli.Usagef("-i0 = %g must be in (0, 1)", *i0)
	case *workers < 0:
		return cli.Usagef("-workers = %d must be non-negative", *workers)
	case *abmTrials < 0:
		return cli.Usagef("-abm-trials = %d must be non-negative", *abmTrials)
	case *abmTrials > 0 && *abmNodes < 2:
		return cli.Usagef("-abm-nodes = %d must be at least 2", *abmNodes)
	}

	rng := rand.New(rand.NewSource(*seed))
	dist, source, err := buildDist(*edges, *gamma, *kmin, *kmax, rng)
	if err != nil {
		return err
	}
	lg.Debug("network built", "source", source, "groups", dist.N(), "mean_degree", dist.MeanDegree())
	fmt.Printf("network: %s (%d degree groups, ⟨k⟩ = %.2f, k ∈ [%d, %d])\n",
		source, dist.N(), dist.MeanDegree(), dist.MinDegree(), dist.MaxDegree())

	omega := degreedist.OmegaSaturating(0.5, 0.5)
	var m *core.Model
	if *r0 > 0 {
		m, err = core.CalibratedModel(dist, *alpha, *eps1, *eps2, *r0, omega)
	} else {
		m, err = core.NewModel(dist, core.Params{
			Alpha:  *alpha,
			Eps1:   *eps1,
			Eps2:   *eps2,
			Lambda: degreedist.LambdaLinear(*lambda0),
			Omega:  omega,
		})
	}
	if err != nil {
		return err
	}

	eq, err := m.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("threshold: r0 = %.4f → verdict: %s\n", eq.R0, eq.Verdict)
	fmt.Printf("zero equilibrium E0: S = %.4f, R = %.4f (physical: %v)\n",
		m.S(eq.Zero.Y, 0), m.R(eq.Zero.Y, 0), eq.Zero.Physical)
	if eq.Positive != nil {
		fmt.Printf("positive equilibrium E+: Θ+ = %.4g (physical: %v)\n",
			eq.Positive.Theta, eq.Positive.Physical)
	}

	ic, err := m.UniformIC(*i0)
	if err != nil {
		return err
	}
	tr, err := m.Simulate(ic, *tf, &core.SimOptions{
		Progress: logProgress(lg), ProgressEvery: 200,
	})
	if err != nil {
		return err
	}
	mean := tr.MeanISeries()
	fmt.Printf("infected fraction: start %.4f, peak %.4f, final %.4g\n",
		mean[0], peak(mean), mean[len(mean)-1])

	chart, err := plot.ASCII("population-weighted infected fraction over time", 72, 14,
		plot.Series{Name: "mean I(t)", X: tr.T, Y: mean})
	if err != nil {
		return err
	}
	fmt.Println(chart)

	if *abmTrials > 0 {
		lamScale := *lambda0
		if *r0 > 0 {
			lamScale, err = core.CalibrateLambdaScale(dist, *alpha, *eps1, *eps2, *r0, omega)
			if err != nil {
				return fmt.Errorf("abm calibration: %w", err)
			}
		}
		return crossValidateABM(dist, lamScale, omega, *eps1, *eps2, *i0, *tf,
			*abmTrials, *abmNodes, *workers, *alpha, rng, lg)
	}
	return nil
}

// logProgress adapts the solver progress stream onto debug-level log
// records, so -log-level debug traces long runs without changing stdout.
func logProgress(lg *slog.Logger) obs.Progress {
	return func(ev obs.Event) {
		lg.Debug("progress", "stage", ev.Stage, "step", ev.Step, "total", ev.Total,
			"t", ev.T, "value", ev.Value)
	}
}

// crossValidateABM realizes a configuration-model graph from the degree
// distribution and compares the agent-based Monte-Carlo mean against the
// ODE prediction printed above.
func crossValidateABM(dist *degreedist.Dist, lamScale float64, omega degreedist.KFunc,
	eps1, eps2, i0, tf float64, trials, nodes, workers int, alpha float64,
	rng *rand.Rand, lg *slog.Logger) error {
	if nodes < 2 {
		return fmt.Errorf("abm-nodes = %d too small", nodes)
	}
	seq := sampleDegrees(dist, nodes, rng)
	g, err := graph.ConfigurationModel(seq, rng)
	if err != nil {
		return fmt.Errorf("abm graph: %w", err)
	}
	const dt = 0.5
	steps := int(tf / dt)
	if steps < 1 {
		steps = 1
	}
	res, err := abm.MeanRun(g, abm.Config{
		Lambda:   degreedist.LambdaLinear(lamScale),
		Omega:    omega,
		Eps1:     eps1,
		Eps2:     eps2,
		I0:       i0,
		Dt:       dt,
		Steps:    steps,
		Mode:     abm.ModeQuenched,
		Workers:  workers,
		Progress: logProgress(lg),
	}, trials, rng)
	if err != nil {
		return fmt.Errorf("abm: %w", err)
	}
	fmt.Printf("ABM cross-validation: %d quenched trials on a %d-node configuration graph\n",
		trials, g.NumNodes())
	fmt.Printf("  ABM infected fraction: start %.4f, peak %.4f, final %.4g\n",
		res.I[0], res.PeakI(), res.FinalI())
	if alpha != 0 {
		fmt.Println("  note: the ABM population is closed (α is ignored); expect the gap " +
			"to the ODE to grow with α·tf")
	}
	chart, err := plot.ASCII("agent-based infected fraction over time", 72, 14,
		plot.Series{Name: "ABM mean I(t)", X: res.T, Y: res.I})
	if err != nil {
		return err
	}
	fmt.Println(chart)
	return nil
}

// sampleDegrees draws an out-degree sequence from the distribution by
// inverse-CDF sampling.
func sampleDegrees(d *degreedist.Dist, n int, rng *rand.Rand) []int {
	cdf := make([]float64, d.N())
	var cum float64
	for i := 0; i < d.N(); i++ {
		cum += d.Prob(i)
		cdf[i] = cum
	}
	seq := make([]int, n)
	for i := range seq {
		g := sort.SearchFloat64s(cdf, rng.Float64())
		if g >= d.N() {
			g = d.N() - 1
		}
		seq[i] = d.Degree(g)
	}
	return seq
}

func buildDist(edges string, gamma float64, kmin, kmax int, rng *rand.Rand) (*degreedist.Dist, string, error) {
	switch {
	case edges != "":
		f, err := os.Open(edges)
		if err != nil {
			return nil, "", fmt.Errorf("open edge list: %w", err)
		}
		defer f.Close()
		g, _, err := graph.ReadEdgeList(f)
		if err != nil {
			return nil, "", err
		}
		d, err := degreedist.FromGraph(g)
		if err != nil {
			return nil, "", err
		}
		return d, "edge list " + edges, nil
	case gamma > 0:
		d, err := degreedist.TruncatedPowerLaw(gamma, kmin, kmax)
		if err != nil {
			return nil, "", err
		}
		return d, fmt.Sprintf("power law γ=%.2f", gamma), nil
	default:
		d, err := digg.Dist(rng)
		if err != nil {
			return nil, "", err
		}
		return d, "synthetic Digg2009", nil
	}
}

func peak(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
