package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunPowerLawScenario(t *testing.T) {
	if err := run([]string{"-gamma", "2.0", "-kmax", "50", "-r0", "0.7", "-tf", "50"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLambdaScenario(t *testing.T) {
	if err := run([]string{"-gamma", "1.8", "-kmax", "30", "-lambda0", "0.01", "-tf", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEdgeListScenario(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n0 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-edges", path, "-lambda0", "0.05", "-tf", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunABMCrossValidation(t *testing.T) {
	if err := run([]string{"-gamma", "1.8", "-kmax", "20", "-r0", "1.5", "-tf", "10",
		"-abm-trials", "2", "-abm-nodes", "1500", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-edges", "/does/not/exist"}); err == nil {
		t.Error("missing edge file: want error")
	}
	if err := run([]string{"-gamma", "2", "-kmin", "9", "-kmax", "3"}); err == nil {
		t.Error("bad degree range: want error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag: want error")
	}
}
