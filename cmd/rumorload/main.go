// Command rumorload drives rumord with open-loop load and reports
// coordinated-omission-correct latency quantiles (DESIGN.md §14).
//
// It offers POST /v1/jobs requests at each configured rate for a fixed
// window — the schedule is set before the server answers anything, so a
// stalling server cannot slow the offered rate — and measures every
// latency from the request's scheduled send time. Per phase it reports
// offered vs achieved rate, cache hits, the server's own saturation
// verdict (the rumor_saturated gauge), and p50/p90/p99/p999 for the
// submit round trip, the end-to-end submit→terminal path, and the three
// server-attributed segments (queue wait, execute, serialize).
//
// Usage:
//
//	rumorload -target http://host:8080 [flags]
//	rumorload -selfhost [flags]
//
// Examples:
//
//	rumorload -selfhost -rates 10,25,50,100 -duration 10s
//	rumorload -target http://localhost:8080 -mix ode=3,threshold=1 -hot 0.8
//	rumorload -selfhost -scenario loadtiny -rates 200,400 -out BENCH_PR9.json
//	rumorload -selfhost -scenario loadtiny -query 0.5 -rates 400 -out BENCH_PR10.json
//
// -query interleaves GET /v1/query requests (answered in microseconds from
// a precomputed response surface built before the sweep starts) with the
// job submissions; -query-fallback aims a slice of them outside the
// surface's covered region to exercise the exact-job fallback path. The
// artifact then records the per-phase surface hit/fallback split alongside
// the query endpoint's quantiles.
//
// -selfhost starts an in-process rumord on a loopback port (the same
// handler stack the daemon serves) so a sweep is reproducible with one
// command and no running daemon. The artifact written by -out follows the
// repo's BENCH JSON conventions; scripts/benchdiff.sh diffs its p99
// fields with the same 5% gate it applies to ns_per_op.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/loadgen"
	"rumornet/internal/service"
)

func main() {
	os.Exit(cli.Exit("rumorload", run(os.Args[1:], os.Stdout)))
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("rumorload", flag.ContinueOnError)
	var (
		target   = fs.String("target", "", "rumord base URL to load (mutually exclusive with -selfhost)")
		selfhost = fs.Bool("selfhost", false, "start an in-process rumord on a loopback port and load that")
		workers  = fs.Int("selfhost-workers", 2, "worker pool size for -selfhost")
		budget   = fs.Duration("selfhost-saturation-budget", 2*time.Second, "queue-wait p99 budget for -selfhost (0: disable the detector)")
		rates    = fs.String("rates", "10,25,50,100", "comma-separated offered rates (requests/second), one phase each")
		duration = fs.Duration("duration", 10*time.Second, "dispatch window per phase")
		mix      = fs.String("mix", "ode=1", "job-type mix as type=weight pairs (types: ode, threshold, abm, fbsm)")
		hot      = fs.Float64("hot", 0.5, "fraction of requests drawn from the hot key set (cache-hot); the rest never repeat a key")
		hotKeys  = fs.Int("hot-keys", 8, "size of the hot key set")
		scenario = fs.String("scenario", "", "scenario name to register (600-node degree mix) and target; empty targets the built-in Digg2009 scenario")
		outPath  = fs.String("out", "", "write the BENCH-style JSON artifact here (default: stdout)")
		suite    = fs.String("suite", "rumorload", "artifact suite label")
		note     = fs.String("note", "", "free-form note recorded in the artifact header")
		poll     = fs.Duration("poll", 2*time.Millisecond, "GET /v1/jobs/{id} poll interval")
		inflight = fs.Int("inflight", 512, "bound on concurrently outstanding requests (waiting for a slot still counts as latency)")
		query    = fs.Float64("query", 0, "fraction of requests sent as GET /v1/query instead of job submissions (0: none; builds the query surface first)")
		queryFB  = fs.Float64("query-fallback", 0.25, "fraction of queries aimed outside the surface hull to force the exact-job fallback")
	)
	lf := cli.AddLogFlags(fs)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	// A sweep drives hundreds of jobs per second; the embedded daemon's
	// per-job INFO lines would drown the phase reports, so quiet it to
	// warn unless the operator asked for a level explicitly.
	logLevelSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "log-level" {
			logLevelSet = true
		}
	})
	if !logLevelSet {
		*lf.Level = "warn"
	}
	lg, err := lf.Logger(os.Stderr)
	if err != nil {
		return err
	}

	if (*target == "") == !*selfhost {
		return cli.Usagef("exactly one of -target or -selfhost is required")
	}
	if *duration <= 0 {
		return cli.Usagef("-duration must be positive, got %s", *duration)
	}
	if *hot < 0 || *hot > 1 {
		return cli.Usagef("-hot must be in [0,1], got %g", *hot)
	}
	if *query < 0 || *query > 1 {
		return cli.Usagef("-query must be in [0,1], got %g", *query)
	}
	if *queryFB < 0 || *queryFB > 1 {
		return cli.Usagef("-query-fallback must be in [0,1], got %g", *queryFB)
	}
	phases, err := parseRates(*rates, *duration)
	if err != nil {
		return err
	}
	mixEntries, mixLabel, err := parseMix(*mix)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	baseURL := *target
	if *selfhost {
		satBudget := *budget
		if satBudget == 0 {
			satBudget = -1 // Config semantics: negative disables, zero means default
		}
		svc, err := service.New(service.Config{
			Workers:          *workers,
			SaturationBudget: satBudget,
			Logger:           lg,
		})
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("selfhost listen: %w", err)
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln) //nolint:errcheck
		defer srv.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "rumorload: selfhost rumord on %s (%d workers)\n", ln.Addr(), *workers)
	}

	g := loadgen.New(loadgen.Config{
		BaseURL:               baseURL,
		Mix:                   mixEntries,
		Scenario:              *scenario,
		HotFraction:           *hot,
		HotKeys:               *hotKeys,
		MaxInFlight:           *inflight,
		PollInterval:          *poll,
		QueryFraction:         *query,
		QueryFallbackFraction: *queryFB,
		Progress:              os.Stderr,
	})
	if err := g.EnsureScenario(ctx); err != nil {
		return err
	}
	if *query > 0 {
		fmt.Fprintln(os.Stderr, "rumorload: building the query surface (threshold eps1×eps2 grid)")
		if err := g.BuildQuerySurface(ctx); err != nil {
			return err
		}
	}
	res, err := g.Run(ctx, phases)
	if err != nil {
		return err
	}

	w := out
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := loadgen.WriteArtifact(w, *suite, *note, mixLabel, *hot, res); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(os.Stderr, "rumorload: wrote %s (%d phases)\n", *outPath, len(res.Phases))
	}
	return nil
}

// parseRates turns "10,25,50" into one phase per rate, named r<rate>.
func parseRates(s string, d time.Duration) ([]loadgen.Phase, error) {
	var phases []loadgen.Phase
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, cli.Usagef("-rates: %q is not a positive rate", part)
		}
		phases = append(phases, loadgen.Phase{
			Name:     "r" + strings.TrimSuffix(strconv.FormatFloat(r, 'f', -1, 64), ".0"),
			Rate:     r,
			Duration: d,
		})
	}
	if len(phases) == 0 {
		return nil, cli.Usagef("-rates: no rates given")
	}
	return phases, nil
}

// parseMix turns "ode=3,threshold=1" into weighted entries plus a
// canonical label for the artifact header.
func parseMix(s string) ([]loadgen.MixEntry, string, error) {
	valid := map[string]bool{"ode": true, "threshold": true, "abm": true, "fbsm": true}
	weights := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		typ, wstr, found := strings.Cut(part, "=")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w < 1 {
				return nil, "", cli.Usagef("-mix: %q has no positive integer weight", part)
			}
		}
		if !valid[typ] {
			return nil, "", cli.Usagef("-mix: unknown job type %q (want ode, threshold, abm or fbsm)", typ)
		}
		weights[typ] += w
	}
	if len(weights) == 0 {
		return nil, "", cli.Usagef("-mix: no entries")
	}
	types := make([]string, 0, len(weights))
	for typ := range weights {
		types = append(types, typ)
	}
	sort.Strings(types)
	var entries []loadgen.MixEntry
	var labels []string
	for _, typ := range types {
		entries = append(entries, loadgen.MixEntry{Type: typ, Weight: weights[typ]})
		labels = append(labels, fmt.Sprintf("%s=%d", typ, weights[typ]))
	}
	return entries, strings.Join(labels, ","), nil
}
