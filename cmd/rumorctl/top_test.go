package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/cli"
)

// cannedTelemetryRegistry serves a /v1/workers page where one worker
// reports telemetry and one has not heartbeated a sample yet.
func cannedTelemetryRegistry(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		now := time.Now().UTC().Format(time.RFC3339Nano)
		fmt.Fprintf(w, `{"workers":[
			{"id":"w-alpha","addr":"10.0.0.5:0","live":true,"leases_held":1,"jobs_completed":42,
			 "last_seen":%q,"oldest_lease_age_ms":1234.5,
			 "telemetry":{"stage":"abm","invariant_violations":3,"jobs_executed":45,
			              "goroutines":17,"gomaxprocs":4,"heap_alloc_bytes":5242880,
			              "gc_pause_seconds_total":0.01,"uptime_seconds":90}},
			{"id":"w-beta","live":false,"leases_held":0,"jobs_completed":7,"last_seen":%q}
		],"count":2}`, now, now)
	}))
}

// TestWorkersTelemetryColumns checks the extended workers table renders the
// relayed sample, and dashes for a worker that has not reported one.
func TestWorkersTelemetryColumns(t *testing.T) {
	ts := cannedTelemetryRegistry(t)
	defer ts.Close()

	var out strings.Builder
	if err := runWorkers([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runWorkers: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"STAGE", "INV", "HEAP", "UPTIME", "LEASE AGE", // the new columns
		"abm", "3", "17", "5.0MiB", "1m30s", "1.2s", // w-alpha's sample
		"w-beta", "-", // no sample yet: dashes
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestTopSubcommand(t *testing.T) {
	ts := cannedTelemetryRegistry(t)
	defer ts.Close()

	var out strings.Builder
	if err := runTop([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"fleet: 2 workers (1 live)",
		"leases 1",
		"completed 49",
		"invariant violations 3",
		"(1/2 reporting)",
		"w-alpha", "w-beta", // the per-worker table follows
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dashboard missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\033[") {
		t.Errorf("one-shot run emitted terminal control sequences:\n%s", got)
	}
}

func TestTopFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"extra"},
		{"-nope"},
		{"-watch", "-1s"},
	} {
		if err := runTop(args, &strings.Builder{}); cli.Code(err) != 2 {
			t.Errorf("runTop(%v): err %v, want usage error", args, err)
		}
	}
}

// TestParseLatency pins the client-side bucket-quantile math against a
// canned exposition page.
func TestParseLatency(t *testing.T) {
	// 100 observations: 90 under 10ms, 9 more under 100ms, 1 under 1s.
	// rank(p99) = 99 -> the le="0.1" bucket.
	text := `# TYPE rumor_job_latency_segment_seconds histogram
rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="0.01"} 90
rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="0.1"} 99
rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="1"} 100
rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="+Inf"} 100
rumor_job_latency_segment_seconds_bucket{segment="execute",le="+Inf"} 100
rumor_saturated 1
`
	s := parseLatency(text)
	if !s.ok || s.count != 100 {
		t.Fatalf("parse failed: %+v", s)
	}
	if s.p99 != 0.1 || s.inOverflow {
		t.Errorf("p99 bound = %g (overflow %v), want 0.1", s.p99, s.inOverflow)
	}
	if !s.saturated {
		t.Error("rumor_saturated 1 not picked up")
	}

	// All mass past the last finite bucket: the bound degrades to ">last".
	over := parseLatency(`rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="0.01"} 0
rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="+Inf"} 5
`)
	if !over.ok || !over.inOverflow || over.p99 != 0.01 {
		t.Errorf("overflow case: %+v, want inOverflow with bound 0.01", over)
	}

	// No queue-wait series at all (segments disabled).
	if s := parseLatency("rumor_jobs_total 3\n"); s.ok {
		t.Errorf("parse of a page without segment buckets claimed ok: %+v", s)
	}
}

// TestTopLatencyLine serves both the worker registry and a /metrics page
// and checks the dashboard renders the queue-wait p99 line with the
// saturation marker.
func TestTopLatencyLine(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"workers":[],"count":0}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="0.25"} 99
rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="+Inf"} 100
rumor_saturated 1
`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out strings.Builder
	if err := runTop([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	got := out.String()
	for _, want := range []string{"queue-wait p99 <=250ms", "(100 jobs)", "[SATURATED]"} {
		if !strings.Contains(got, want) {
			t.Errorf("dashboard missing %q:\n%s", want, got)
		}
	}
}
