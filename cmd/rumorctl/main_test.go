package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunOptimize(t *testing.T) {
	if err := run([]string{"-tf", "10", "-grid", "80", "-groups", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTargetAndJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	if err := run([]string{
		"-tf", "15", "-grid", "80", "-groups", "20",
		"-target", "1e-3", "-save-json", path,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty schedule file")
	}
}

func TestRunCompareHeuristic(t *testing.T) {
	if err := run([]string{"-tf", "10", "-grid", "80", "-groups", "20", "-compare-heuristic"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zzz"}); err == nil {
		t.Error("bad flag: want error")
	}
}

func TestRunLoadJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.json")
	if err := run([]string{"-tf", "10", "-grid", "60", "-groups", "15", "-save-json", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-tf", "10", "-grid", "60", "-groups", "15", "-load-json", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-load-json", "/does/not/exist"}); err == nil {
		t.Error("missing schedule file: want error")
	}
}
