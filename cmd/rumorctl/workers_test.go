package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/cli"
)

// cannedWorkerRegistry serves a fixed GET /v1/workers page in the rumord
// wire format; empty selects the standalone daemon's empty registry.
func cannedWorkerRegistry(t *testing.T, empty bool) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/workers" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		if empty {
			fmt.Fprint(w, `{"workers":[],"count":0}`)
			return
		}
		now := time.Now().UTC().Format(time.RFC3339Nano)
		fmt.Fprintf(w, `{"workers":[
			{"id":"w-alpha","addr":"10.0.0.5:0","live":true,"leases_held":1,"jobs_completed":42,"last_seen":%q},
			{"id":"w-beta","live":false,"leases_held":0,"jobs_completed":7,"last_seen":%q}
		],"count":2}`, now, now)
	}))
}

func TestWorkersSubcommand(t *testing.T) {
	ts := cannedWorkerRegistry(t, false)
	defer ts.Close()

	var out strings.Builder
	if err := runWorkers([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runWorkers: %v", err)
	}
	got := out.String()
	for _, want := range []string{"ID", "w-alpha", "10.0.0.5:0", "live", "42", "w-beta", "lost", "ago"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Index(got, "w-alpha") > strings.Index(got, "w-beta") {
		t.Errorf("rows not in registry order:\n%s", got)
	}
}

func TestWorkersSubcommandEmpty(t *testing.T) {
	ts := cannedWorkerRegistry(t, true)
	defer ts.Close()

	var out strings.Builder
	if err := runWorkers([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runWorkers: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "no workers registered") {
		t.Errorf("empty registry output = %q, want the standalone note", got)
	}
}

func TestWorkersSubcommandError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"draining"}`)
	}))
	defer ts.Close()
	err := runWorkers([]string{"-addr", ts.URL}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("daemon error: err %v, want its JSON message surfaced", err)
	}
}

func TestWorkersFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"positional arg", []string{"extra"}},
		{"unknown flag", []string{"-nope"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runWorkers(tc.args, &strings.Builder{})
			if cli.Code(err) != 2 {
				t.Errorf("runWorkers(%v): err %v, want usage error", tc.args, err)
			}
		})
	}
}
