package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"

	"rumornet/internal/cli"
	"rumornet/internal/obs/journal"
)

// runEvents implements `rumorctl events <job-id>`: it replays a job's
// flight recorder from a rumord daemon and, with -follow, keeps printing
// live entries as the Server-Sent-Events stream delivers them, until the
// job's terminal entry closes the stream.
func runEvents(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl events", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord daemon")
	follow := fs.Bool("follow", false, "keep streaming live entries until the job finishes")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return cli.Usagef("usage: rumorctl events [flags] <job-id>")
	}

	url := strings.TrimRight(*addr, "/") + "/v1/jobs/" + fs.Arg(0) + "/events"
	if !*follow {
		url += "?follow=0"
	}
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("rumord: %s", apiErr.Error)
		}
		return fmt.Errorf("rumord: status %d", resp.StatusCode)
	}
	return printSSE(resp.Body, out)
}

// printSSE decodes an SSE stream of journal entries and renders one line
// per entry. Heartbeat comments are dropped; the server's id/event fields
// are redundant with the entry payload and ignored.
func printSSE(r io.Reader, out io.Writer) error {
	sc := bufio.NewScanner(r)
	var data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && data != "":
			var e journal.Entry
			if err := json.Unmarshal([]byte(data), &e); err != nil {
				return fmt.Errorf("malformed event %q: %w", data, err)
			}
			fmt.Fprintln(out, formatEntry(e))
			data = ""
		}
	}
	return sc.Err()
}

// formatEntry renders one journal entry as a fixed-width terminal line.
// Invariant violations shout so they stand out in a scrolling stream.
func formatEntry(e journal.Entry) string {
	ts := e.Time.Format("15:04:05.000")
	switch e.Kind {
	case journal.KindProgress:
		s := fmt.Sprintf("%6d  %s  progress   %s %d/%d t=%.4g value=%.6g",
			e.Seq, ts, e.Stage, e.Step, e.Total, e.T, e.Value)
		if e.Cost != 0 {
			s += fmt.Sprintf(" cost=%.6g", e.Cost)
		}
		return s
	case journal.KindInvariant:
		return fmt.Sprintf("%6d  %s  INVARIANT  %s: %s", e.Seq, ts, e.Check, e.Msg)
	default:
		return fmt.Sprintf("%6d  %s  %-9s  %s", e.Seq, ts, e.Kind, e.Msg)
	}
}
