package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"text/tabwriter"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/cluster"
)

// fetchWorkers retrieves the coordinator's worker registry
// (GET /v1/workers); the workers and top subcommands share it.
func fetchWorkers(addr string) ([]cluster.WorkerInfo, error) {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/workers")
	if err != nil {
		return nil, fmt.Errorf("connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return nil, fmt.Errorf("rumord: %s", apiErr.Error)
		}
		return nil, fmt.Errorf("rumord: status %d", resp.StatusCode)
	}
	var page struct {
		Workers []cluster.WorkerInfo `json:"workers"`
		Count   int                  `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return nil, fmt.Errorf("decode worker registry: %w", err)
	}
	return page.Workers, nil
}

// runWorkers implements `rumorctl workers`: it fetches the coordinator's
// worker registry (GET /v1/workers) and renders one table row per worker,
// including the telemetry sample each worker relays on its heartbeats.
// Against a standalone daemon the registry is empty — jobs run in-process.
func runWorkers(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl workers", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord coordinator")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("usage: rumorctl workers [flags]")
	}

	workers, err := fetchWorkers(*addr)
	if err != nil {
		return err
	}
	if len(workers) == 0 {
		fmt.Fprintln(out, "no workers registered (standalone daemon, or none have polled yet)")
		return nil
	}
	return renderWorkers(out, workers)
}

// renderWorkers writes the per-worker table. Telemetry columns render "-"
// until a worker's first heartbeat carries a sample.
func renderWorkers(out io.Writer, workers []cluster.WorkerInfo) error {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tADDR\tSTATE\tLEASES\tLEASE AGE\tCOMPLETED\tSTAGE\tINV\tGOROUT\tHEAP\tUPTIME\tLAST SEEN")
	for _, w := range workers {
		state := "live"
		if !w.Live {
			state = "lost"
		}
		age := "-"
		if w.OldestLeaseAgeMS > 0 {
			age = fmtDuration(time.Duration(w.OldestLeaseAgeMS * float64(time.Millisecond)))
		}
		stage, inv, gor, heap, up := "-", "-", "-", "-", "-"
		if t := w.Telemetry; t != nil {
			if t.Stage != "" {
				stage = t.Stage
			} else {
				stage = "idle"
			}
			inv = fmt.Sprintf("%d", t.InvariantViolations)
			gor = fmt.Sprintf("%d", t.Goroutines)
			heap = fmtBytes(t.HeapAllocBytes)
			up = fmtDuration(time.Duration(t.UptimeSeconds * float64(time.Second)))
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%s\t%d\t%s\t%s\t%s\t%s\t%s\t%s ago\n",
			w.ID, w.Addr, state, w.LeasesHeld, age, w.JobsCompleted,
			stage, inv, gor, heap, up,
			time.Since(w.LastSeen).Round(time.Millisecond))
	}
	return tw.Flush()
}

// fmtBytes renders a byte count with a binary unit, one decimal.
func fmtBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// fmtDuration rounds a duration to a human-scannable precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return d.Round(time.Minute).String()
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return d.Round(100 * time.Millisecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}
