package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"text/tabwriter"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/cluster"
)

// runWorkers implements `rumorctl workers`: it fetches the coordinator's
// worker registry (GET /v1/workers) and renders one table row per worker.
// Against a standalone daemon the registry is empty — jobs run in-process.
func runWorkers(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl workers", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord coordinator")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("usage: rumorctl workers [flags]")
	}

	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/workers")
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("rumord: %s", apiErr.Error)
		}
		return fmt.Errorf("rumord: status %d", resp.StatusCode)
	}
	var page struct {
		Workers []cluster.WorkerInfo `json:"workers"`
		Count   int                  `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("decode worker registry: %w", err)
	}
	if page.Count == 0 {
		fmt.Fprintln(out, "no workers registered (standalone daemon, or none have polled yet)")
		return nil
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tADDR\tSTATE\tLEASES\tCOMPLETED\tLAST SEEN")
	for _, w := range page.Workers {
		state := "live"
		if !w.Live {
			state = "lost"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%s ago\n",
			w.ID, w.Addr, state, w.LeasesHeld, w.JobsCompleted,
			time.Since(w.LastSeen).Round(time.Millisecond))
	}
	return tw.Flush()
}
