package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/cluster"
	"rumornet/internal/service"
)

// runTop implements `rumorctl top`: a fleet-level dashboard over the
// coordinator's worker registry. One shot by default; -watch re-fetches and
// redraws at the given cadence until interrupted, like top(1) for the
// cluster. The numbers come from the telemetry samples workers piggyback on
// their heartbeats, so the dashboard needs no access to the workers
// themselves.
func runTop(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl top", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord coordinator")
	watch := fs.Duration("watch", 0, "redraw every interval (0: print once and exit)")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("usage: rumorctl top [flags]")
	}
	if *watch < 0 {
		return cli.Usagef("-watch = %s must be non-negative", *watch)
	}

	for {
		workers, err := fetchWorkers(*addr)
		if err != nil {
			return err
		}
		lat := fetchLatency(*addr)
		surf := fetchSurfaceStats(*addr)
		if *watch > 0 {
			fmt.Fprint(out, "\033[H\033[2J") // home + clear, terminal redraw
		}
		if err := renderTop(out, workers, lat, surf); err != nil {
			return err
		}
		if *watch <= 0 {
			return nil
		}
		time.Sleep(*watch)
	}
}

// renderTop writes the fleet summary line followed by the per-worker table.
func renderTop(out io.Writer, workers []cluster.WorkerInfo, lat latencySummary, surf *service.SurfaceStats) error {
	var (
		live      int
		leases    int
		completed int64
		executed  int64
		inv       int64
		heap      uint64
		gor       int
		sampled   int
	)
	for _, w := range workers {
		if w.Live {
			live++
		}
		leases += w.LeasesHeld
		completed += w.JobsCompleted
		if t := w.Telemetry; t != nil {
			sampled++
			executed += t.JobsExecuted
			inv += t.InvariantViolations
			heap += t.HeapAllocBytes
			gor += t.Goroutines
		}
	}
	fmt.Fprintf(out, "fleet: %d workers (%d live)  leases %d  completed %d\n",
		len(workers), live, leases, completed)
	if sampled > 0 {
		fmt.Fprintf(out, "telemetry: executed %d  invariant violations %d  goroutines %d  heap %s (%d/%d reporting)\n",
			executed, inv, gor, fmtBytes(heap), sampled, len(workers))
	} else {
		fmt.Fprintln(out, "telemetry: no samples yet (workers report on their first heartbeat)")
	}
	renderLatency(out, lat)
	renderSurfaceStats(out, surf)
	if len(workers) == 0 {
		fmt.Fprintln(out, "no workers registered (standalone daemon, or none have polled yet)")
		return nil
	}
	fmt.Fprintln(out)
	return renderWorkers(out, workers)
}
