// Command rumorctl computes the optimized countermeasure policy of
// Section IV: the time-varying immunization rate ε1(t) (spread truth) and
// blocking rate ε2(t) that restrain a rumor by the deadline at minimum
// cost, via Pontryagin's maximum principle.
//
// Usage:
//
//	rumorctl [flags]
//	rumorctl events [-addr URL] [-follow] <job-id>
//	rumorctl jobs [-addr URL] [-limit N] [-status S]
//	rumorctl workers [-addr URL]
//	rumorctl top [-addr URL] [-watch INTERVAL]
//	rumorctl surfaces [-addr URL] [-build -axis name=min:max:points ...]
//	rumorctl query [-addr URL] -type T [-p name=value ...]
//
// Examples:
//
//	rumorctl -tf 100 -c1 5 -c2 10
//	rumorctl -tf 50 -target 1e-4 -epsmax 0.8
//	rumorctl -tf 60 -compare-heuristic
//	rumorctl events -addr http://localhost:8080 -follow j-000001
//	rumorctl jobs -status failed -limit 20
//	rumorctl workers -addr http://localhost:8080
//	rumorctl top -addr http://localhost:8080 -watch 2s
//	rumorctl surfaces -build -type threshold -axis eps1=0.1:0.4:5 -axis eps2=0.02:0.1:5 -wait
//	rumorctl query -type threshold -p eps1=0.17 -p eps2=0.05
//
// The events subcommand tails a rumord job's flight recorder: it replays
// the recorded lifecycle, solver-checkpoint and invariant-violation
// entries and, with -follow, streams new ones live over SSE until the job
// finishes — against a clustered coordinator the stream transparently
// includes the entries the executing worker relayed back. The jobs
// subcommand lists the daemon's retained jobs newest first, optionally
// filtered by status. The workers subcommand lists the worker nodes
// registered with a clustered coordinator — lease counts, liveness, and
// each node's relayed telemetry (current stage, invariant violations, heap,
// uptime). The top subcommand aggregates the same registry into a fleet
// dashboard, redrawn every -watch interval like top(1). The surfaces
// subcommand lists the daemon's precomputed response surfaces or, with
// -build, sweeps a parameter grid into a new one; the query subcommand asks
// /v1/query for an interpolated answer with an explicit error bound, falling
// back to an exact job when the question leaves the covered region.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"rumornet/internal/cli"
	"rumornet/internal/control"
	"rumornet/internal/core"
	"rumornet/internal/degreedist"
	"rumornet/internal/digg"
	"rumornet/internal/obs"
	"rumornet/internal/plot"
)

func main() {
	os.Exit(cli.Exit("rumorctl", run(os.Args[1:])))
}

// evaluateSaved replays a previously exported schedule and reports its
// cost and terminal infection on the current scenario.
func evaluateSaved(m *core.Model, ic []float64, path string, cost control.Cost) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("open %s: %w", path, err)
	}
	defer f.Close()
	sched, err := control.ReadScheduleJSON(f)
	if err != nil {
		return err
	}
	bd, tr, err := control.EvaluateCost(m, ic, sched, cost)
	if err != nil {
		return err
	}
	_, yf := tr.Last()
	var terminal float64
	for i := 0; i < m.N(); i++ {
		terminal += m.Dist().Prob(i) * m.I(yf, i)
	}
	fmt.Printf("replayed schedule %s over (0, %g]\n", path, sched.Horizon())
	fmt.Printf("objective J = %.5g (terminal ΣI = %.4g, running cost = %.5g)\n",
		bd.Total, bd.Terminal, bd.Running)
	fmt.Printf("terminal population-weighted infection: %.4g\n", terminal)
	return nil
}

func run(args []string) error {
	// Subcommand dispatch: a leading non-flag argument selects a verb; bare
	// flags keep the original optimize-a-policy behavior.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "events":
			return runEvents(args[1:], os.Stdout)
		case "jobs":
			return runJobs(args[1:], os.Stdout)
		case "workers":
			return runWorkers(args[1:], os.Stdout)
		case "top":
			return runTop(args[1:], os.Stdout)
		case "surfaces":
			return runSurfaces(args[1:], os.Stdout)
		case "query":
			return runQuery(args[1:], os.Stdout)
		default:
			return cli.Usagef("unknown subcommand %q (supported: events, jobs, workers, top, surfaces, query)", args[0])
		}
	}
	fs := flag.NewFlagSet("rumorctl", flag.ContinueOnError)
	var (
		alpha  = fs.Float64("alpha", 0.01, "rate of new individuals entering")
		eps1   = fs.Float64("eps1", 0.05, "baseline immunization rate (pre-control)")
		eps2   = fs.Float64("eps2", 0.02, "baseline blocking rate (pre-control)")
		r0     = fs.Float64("r0", 2.1661, "calibrated epidemic threshold of the uncontrolled rumor")
		i0     = fs.Float64("i0", 0.1, "initial infected density per group")
		tf     = fs.Float64("tf", 100, "deadline: the expected time period (0, tf]")
		c1     = fs.Float64("c1", 5, "unit cost of spreading truth")
		c2     = fs.Float64("c2", 10, "unit cost of blocking rumors")
		epsMax = fs.Float64("epsmax", 0.8, "upper bound for both controls")
		grid   = fs.Int("grid", 1000, "time-grid intervals for the sweep")
		target = fs.Float64("target", 0, "terminal infected-density target (0: plain objective)")
		seed   = fs.Int64("seed", 1, "random seed")
		groups = fs.Int("groups", 0, "truncate the distribution to this many lowest-degree groups (0: all)")

		compareHeuristic = fs.Bool("compare-heuristic", false, "also calibrate the feedback heuristic and compare costs")
		saveJSON         = fs.String("save-json", "", "write the optimized schedule as JSON to this file")
		loadJSON         = fs.String("load-json", "", "skip optimization; evaluate a saved schedule against the scenario")
	)
	lf := cli.AddLogFlags(fs)
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	lg, err := lf.Logger(os.Stderr)
	if err != nil {
		return err
	}
	switch {
	case *tf <= 0:
		return cli.Usagef("-tf = %g must be positive", *tf)
	case *i0 <= 0 || *i0 >= 1:
		return cli.Usagef("-i0 = %g must be in (0, 1)", *i0)
	case *c1 <= 0 || *c2 <= 0:
		return cli.Usagef("-c1 = %g and -c2 = %g must be positive", *c1, *c2)
	case *epsMax <= 0 || *epsMax > 1:
		return cli.Usagef("-epsmax = %g must be in (0, 1]", *epsMax)
	case *grid < 1:
		return cli.Usagef("-grid = %d must be at least 1", *grid)
	case *target < 0:
		return cli.Usagef("-target = %g must be non-negative", *target)
	case *groups < 0:
		return cli.Usagef("-groups = %d must be non-negative", *groups)
	}

	rng := rand.New(rand.NewSource(*seed))
	dist, err := digg.Dist(rng)
	if err != nil {
		return err
	}
	if *groups > 0 {
		if dist, err = dist.Truncate(*groups); err != nil {
			return err
		}
	}
	m, err := core.CalibratedModel(dist, *alpha, *eps1, *eps2, *r0, degreedist.OmegaSaturating(0.5, 0.5))
	if err != nil {
		return err
	}
	ic, err := m.UniformIC(*i0)
	if err != nil {
		return err
	}
	opts := control.Options{
		Grid:    *grid,
		MaxIter: 250,
		Eps1Max: *epsMax,
		Eps2Max: *epsMax,
		Cost:    control.Cost{C1: *c1, C2: *c2},
		// Per-sweep convergence trace at debug level: residual + objective,
		// the fastest way to see why a run has not converged.
		Progress: func(ev obs.Event) {
			if ev.Stage != obs.StageFBSM {
				return
			}
			lg.Debug("fbsm sweep", "iter", ev.Step, "max_iter", ev.Total,
				"residual", ev.Value, "cost", ev.Cost)
		},
	}

	fmt.Printf("uncontrolled threshold r0 = %.4f (%s); deadline tf = %g; costs c1 = %g, c2 = %g\n",
		m.R0(), m.Classify(), *tf, *c1, *c2)

	if *loadJSON != "" {
		return evaluateSaved(m, ic, *loadJSON, opts.Cost)
	}

	var pol *control.Policy
	if *target > 0 {
		pol, err = control.OptimizeToTarget(m, ic, *tf, *target, opts)
	} else {
		pol, err = control.Optimize(m, ic, *tf, opts)
	}
	if err != nil {
		return err
	}
	fmt.Printf("FBSM: converged=%v after %d sweeps\n", pol.Converged, pol.Iterations)
	fmt.Printf("objective J = %.5g (terminal ΣI = %.4g, running cost = %.5g)\n",
		pol.Cost.Total, pol.Cost.Terminal, pol.Cost.Running)

	chart, err := plot.ASCII("optimized countermeasures", 72, 14,
		plot.Series{Name: "ε1(t) spread truth", X: pol.Schedule.T, Y: pol.Schedule.Eps1},
		plot.Series{Name: "ε2(t) block rumors", X: pol.Schedule.T, Y: pol.Schedule.Eps2},
	)
	if err != nil {
		return err
	}
	fmt.Println(chart)

	// Decision-reference table: the real-time implementation proportions.
	fmt.Println("policy summary (decision reference):")
	fmt.Printf("  %8s  %10s  %10s  %10s\n", "t", "ε1", "ε2", "dominant")
	n := len(pol.Schedule.T)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		j := int(frac * float64(n-1))
		e1, e2 := pol.Schedule.Eps1[j], pol.Schedule.Eps2[j]
		dom := "spread truth"
		if e2 > e1 {
			dom = "block rumors"
		}
		fmt.Printf("  %8.1f  %10.4f  %10.4f  %10s\n", pol.Schedule.T[j], e1, e2, dom)
	}

	if *saveJSON != "" {
		f, err := os.Create(*saveJSON)
		if err != nil {
			return fmt.Errorf("create %s: %w", *saveJSON, err)
		}
		werr := pol.Schedule.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("save schedule: %w", werr)
		}
		fmt.Printf("schedule written to %s\n", *saveJSON)
	}

	if *compareHeuristic {
		tgt := *target
		if tgt <= 0 {
			tgt = 1e-4
		}
		heur, err := control.CalibrateHeuristic(m, ic, *tf, tgt, *grid, *epsMax, *epsMax, opts.Cost)
		if err != nil {
			return err
		}
		opt := pol
		if *target <= 0 {
			if opt, err = control.OptimizeToTarget(m, ic, *tf, tgt, opts); err != nil {
				return err
			}
		}
		fmt.Printf("\ncost comparison at equal terminal infection (≤ %g):\n", tgt)
		fmt.Printf("  heuristic feedback: running cost %.5g\n", heur.Cost.Running)
		fmt.Printf("  optimized policy:   running cost %.5g  (%.2fx cheaper)\n",
			opt.Cost.Running, heur.Cost.Running/opt.Cost.Running)
	}
	return nil
}
