package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/service"
)

// multiFlag collects a repeatable string flag (-axis a=... -axis b=...).
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// runSurfaces implements `rumorctl surfaces`: without -build it lists the
// daemon's resident response surfaces (GET /v1/surfaces); with -build it
// submits a sweep spec (POST /v1/surfaces) whose grid points run as batch
// jobs, optionally waiting for the fold to finish.
func runSurfaces(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl surfaces", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord daemon")
	build := fs.Bool("build", false, "build a surface instead of listing")
	typ := fs.String("type", "threshold", "job type to sweep (with -build)")
	scenario := fs.String("scenario", "", "scenario name (with -build; empty: the built-in Digg2009)")
	fields := fs.String("fields", "", "comma-separated scalar result fields to record (with -build; empty: the type's default set)")
	wait := fs.Bool("wait", false, "block until the build settles (with -build)")
	var axes multiFlag
	fs.Var(&axes, "axis", "sweep axis as name=min:max:points or name=v1,v2,... (repeatable, with -build)")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("usage: rumorctl surfaces [flags]")
	}
	base := strings.TrimRight(*addr, "/")
	if !*build {
		if len(axes) > 0 {
			return cli.Usagef("-axis requires -build")
		}
		return listSurfaces(base, out)
	}
	if len(axes) == 0 {
		return cli.Usagef("-build needs at least one -axis name=min:max:points")
	}

	spec := map[string]any{"type": *typ}
	if *scenario != "" {
		spec["scenario"] = *scenario
	}
	if *fields != "" {
		spec["fields"] = strings.Split(*fields, ",")
	}
	var specAxes []map[string]any
	for _, a := range axes {
		ax, err := parseAxis(a)
		if err != nil {
			return err
		}
		specAxes = append(specAxes, ax)
	}
	spec["axes"] = specAxes
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/surfaces", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return apiError(resp.StatusCode, raw)
	}
	var info service.SurfaceInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return fmt.Errorf("decode surface response: %w", err)
	}
	fmt.Fprintf(out, "surface %s: %s (%d points)\n", info.Key, info.Status, info.Points)
	if !*wait || info.Status != "building" {
		return nil
	}
	for info.Status == "building" {
		time.Sleep(250 * time.Millisecond)
		got, err := fetchSurface(base, info.Key)
		if err != nil {
			return err
		}
		info = got
		fmt.Fprintf(out, "  %d/%d points\n", info.PointsDone, info.Points)
	}
	if info.Status != "ready" {
		return fmt.Errorf("surface build %s: %s", info.Status, info.Error)
	}
	fmt.Fprintf(out, "surface %s: ready (%s)\n", info.Key, fmtBytes(uint64(info.Bytes)))
	return nil
}

// parseAxis turns "eps1=0.1:0.4:4" (linear grid) or "eps1=0.1,0.2,0.35"
// (explicit values) into a sweep-axis object.
func parseAxis(s string) (map[string]any, error) {
	name, rest, found := strings.Cut(s, "=")
	if !found || name == "" || rest == "" {
		return nil, cli.Usagef("-axis %q: want name=min:max:points or name=v1,v2,...", s)
	}
	if strings.Contains(rest, ":") {
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return nil, cli.Usagef("-axis %q: want name=min:max:points", s)
		}
		min, err1 := strconv.ParseFloat(parts[0], 64)
		max, err2 := strconv.ParseFloat(parts[1], 64)
		pts, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, cli.Usagef("-axis %q: unparsable grid", s)
		}
		return map[string]any{"name": name, "min": min, "max": max, "points": pts}, nil
	}
	var vals []float64
	for _, p := range strings.Split(rest, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, cli.Usagef("-axis %q: bad value %q", s, p)
		}
		vals = append(vals, v)
	}
	return map[string]any{"name": name, "values": vals}, nil
}

func listSurfaces(base string, out io.Writer) error {
	resp, err := http.Get(base + "/v1/surfaces")
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp.StatusCode, raw)
	}
	var page struct {
		Surfaces []service.SurfaceInfo `json:"surfaces"`
		Count    int                   `json:"count"`
	}
	if err := json.Unmarshal(raw, &page); err != nil {
		return fmt.Errorf("decode surface index: %w", err)
	}
	if page.Count == 0 {
		fmt.Fprintln(out, "no surfaces resident (build one with rumorctl surfaces -build)")
		return nil
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "KEY\tTYPE\tSCENARIO\tSTATUS\tPOINTS\tBYTES\tAXES")
	for _, s := range page.Surfaces {
		var axes []string
		for _, a := range s.Axes {
			axes = append(axes, fmt.Sprintf("%s[%d]", a.Name, len(a.Values)))
		}
		fmt.Fprintf(tw, "%.12s\t%s\t%s\t%s\t%d/%d\t%d\t%s\n",
			s.Key, s.Type, s.Scenario, s.Status, s.PointsDone, s.Points,
			s.Bytes, strings.Join(axes, "×"))
	}
	return tw.Flush()
}

func fetchSurface(base, key string) (service.SurfaceInfo, error) {
	resp, err := http.Get(base + "/v1/surfaces")
	if err != nil {
		return service.SurfaceInfo{}, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return service.SurfaceInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.SurfaceInfo{}, apiError(resp.StatusCode, raw)
	}
	var page struct {
		Surfaces []service.SurfaceInfo `json:"surfaces"`
	}
	if err := json.Unmarshal(raw, &page); err != nil {
		return service.SurfaceInfo{}, err
	}
	for _, s := range page.Surfaces {
		if s.Key == key {
			return s, nil
		}
	}
	return service.SurfaceInfo{}, fmt.Errorf("surface %s vanished", key)
}

// runQuery implements `rumorctl query`: one GET /v1/query round trip.
// Surface hits print the interpolated values with their error bounds;
// fallbacks print the exact job that was submitted instead.
func runQuery(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl query", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord daemon")
	typ := fs.String("type", "threshold", "job type to query")
	scenario := fs.String("scenario", "", "scenario name (empty: the built-in Digg2009)")
	fields := fs.String("fields", "", "comma-separated fields to return (empty: everything the surface recorded)")
	tolerance := fs.Float64("tolerance", 0, "max acceptable interpolation error bound (0: accept any)")
	var params multiFlag
	fs.Var(&params, "p", "query parameter as name=value, e.g. -p eps1=0.17 (repeatable)")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("usage: rumorctl query [flags]")
	}

	q := url.Values{}
	q.Set("type", *typ)
	if *scenario != "" {
		q.Set("scenario", *scenario)
	}
	if *fields != "" {
		q.Set("fields", *fields)
	}
	if *tolerance > 0 {
		q.Set("tolerance", strconv.FormatFloat(*tolerance, 'g', -1, 64))
	}
	for _, p := range params {
		name, val, found := strings.Cut(p, "=")
		if !found || name == "" {
			return cli.Usagef("-p %q: want name=value", p)
		}
		q.Set(name, val)
	}

	start := time.Now()
	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/query?" + q.Encode())
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return apiError(resp.StatusCode, raw)
	}
	var res service.QueryResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return fmt.Errorf("decode query response: %w", err)
	}

	if res.Source == "surface" {
		fmt.Fprintf(out, "answered from surface %.12s in %s\n", res.SurfaceKey, elapsed.Round(time.Microsecond))
		names := make([]string, 0, len(res.Values))
		for f := range res.Values {
			names = append(names, f)
		}
		sort.Strings(names)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "FIELD\tVALUE\tERROR BOUND")
		for _, f := range names {
			fmt.Fprintf(tw, "%s\t%.6g\t±%.3g\n", f, res.Values[f], res.ErrorBound[f])
		}
		return tw.Flush()
	}
	fmt.Fprintf(out, "fell back to the exact path: %s\n", res.Reason)
	if res.Job == nil {
		return fmt.Errorf("fallback envelope carries no job")
	}
	j := res.Job
	if j.Status == service.StatusSucceeded {
		fmt.Fprintf(out, "job %s succeeded in %s:\n%s\n", j.ID, elapsed.Round(time.Microsecond), j.Result)
		return nil
	}
	fmt.Fprintf(out, "job %s %s — poll with: rumorctl jobs -addr %s\n", j.ID, j.Status, *addr)
	return nil
}

// apiError renders a daemon error body ({"error": ...}) or the bare status.
func apiError(code int, raw []byte) error {
	var apiErr struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &apiErr) == nil && apiErr.Error != "" {
		return fmt.Errorf("rumord: %s", apiErr.Error)
	}
	return fmt.Errorf("rumord: status %d", code)
}

// fetchSurfaceStats reads the surface section off GET /v1/stats; failures
// degrade to nil (standalone daemons without the tier render nothing).
func fetchSurfaceStats(addr string) *service.SurfaceStats {
	resp, err := http.Get(strings.TrimRight(addr, "/") + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	var st struct {
		Surface *service.SurfaceStats `json:"surface"`
	}
	if json.Unmarshal(raw, &st) != nil {
		return nil
	}
	return st.Surface
}

// renderSurfaceStats writes the dashboard's surface line.
func renderSurfaceStats(out io.Writer, st *service.SurfaceStats) {
	if st == nil {
		fmt.Fprintln(out, "surfaces: none resident")
		return
	}
	line := fmt.Sprintf("surfaces: %d loaded (%s)", st.Loaded, fmtBytes(uint64(st.Bytes)))
	if st.Building > 0 {
		line += fmt.Sprintf("  %d building", st.Building)
	}
	if st.Failed > 0 {
		line += fmt.Sprintf("  %d failed", st.Failed)
	}
	if st.Queries > 0 {
		line += fmt.Sprintf("  hit rate %.1f%% (%d hits / %d fallbacks)",
			st.HitRate*100, st.Hits, st.Fallbacks)
	}
	fmt.Fprintln(out, line)
}
