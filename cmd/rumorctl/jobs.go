package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"text/tabwriter"
	"time"

	"rumornet/internal/cli"
	"rumornet/internal/service"
)

// runJobs implements `rumorctl jobs`: it fetches the bounded newest-first
// job index from a rumord daemon (GET /v1/jobs) and renders one table row
// per job. -status filters server-side; -limit pages the index.
func runJobs(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rumorctl jobs", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the rumord daemon")
	limit := fs.Int("limit", 0, "max jobs to list (0: the server default)")
	status := fs.String("status", "", "only jobs in this status (queued, running, succeeded, failed, cancelled)")
	if err := cli.WrapParse(fs.Parse(args)); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return cli.Usagef("usage: rumorctl jobs [flags]")
	}
	if *limit < 0 {
		return cli.Usagef("-limit = %d must be non-negative", *limit)
	}

	q := url.Values{}
	if *limit > 0 {
		q.Set("limit", fmt.Sprint(*limit))
	}
	if *status != "" {
		q.Set("status", *status)
	}
	u := strings.TrimRight(*addr, "/") + "/v1/jobs"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return fmt.Errorf("connect: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("rumord: %s", apiErr.Error)
		}
		return fmt.Errorf("rumord: status %d", resp.StatusCode)
	}
	var page struct {
		Jobs  []service.Job `json:"jobs"`
		Count int           `json:"count"`
		Total int           `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("decode job index: %w", err)
	}

	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ID\tTYPE\tSCENARIO\tSTATUS\tSUBMITTED\tELAPSED\tDETAIL")
	for _, j := range page.Jobs {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			j.ID, j.Type, j.Scenario, j.Status,
			j.SubmittedAt.Format("15:04:05"), jobElapsed(j), jobDetail(j))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if page.Count < page.Total {
		fmt.Fprintf(out, "(showing %d of %d; raise -limit for more)\n", page.Count, page.Total)
	}
	return nil
}

// jobElapsed reports queue-to-finish time for settled jobs and time since
// submission for live ones.
func jobElapsed(j service.Job) string {
	end := time.Now()
	if j.FinishedAt != nil {
		end = *j.FinishedAt
	}
	return end.Sub(j.SubmittedAt).Round(time.Millisecond).String()
}

// jobDetail is the last table column: the error for failed jobs, cache
// provenance for hits, blank otherwise.
func jobDetail(j service.Job) string {
	switch {
	case j.Error != "":
		return j.Error
	case j.CacheHit:
		return "cache hit"
	default:
		return ""
	}
}
