package main

import (
	"testing"

	"rumornet/internal/cli"
)

// TestFlagValidation checks the usage-failure exit discipline: invalid flag
// values map to exit code 2 before any expensive work starts.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help", []string{"-help"}, 0},
		{"unknown flag", []string{"-bogus"}, 2},
		{"negative tf", []string{"-tf", "-10"}, 2},
		{"zero c1", []string{"-c1", "0"}, 2},
		{"negative c2", []string{"-c2", "-3"}, 2},
		{"epsmax zero", []string{"-epsmax", "0"}, 2},
		{"epsmax above one", []string{"-epsmax", "1.2"}, 2},
		{"grid zero", []string{"-grid", "0"}, 2},
		{"negative target", []string{"-target", "-1e-4"}, 2},
		{"negative groups", []string{"-groups", "-1"}, 2},
		{"i0 out of range", []string{"-i0", "1"}, 2},
		{"missing schedule file", []string{"-load-json", "/does/not/exist"}, 1},
		{"bad log level", []string{"-log-level", "loud"}, 2},
		{"bad log format", []string{"-log-format", "yaml"}, 2},
		{"unknown subcommand", []string{"serve"}, 2},
		{"events help", []string{"events", "-help"}, 0},
		{"events missing job id", []string{"events"}, 2},
		{"events extra args", []string{"events", "j-1", "extra"}, 2},
		{"events unknown flag", []string{"events", "-bogus", "j-1"}, 2},
		{"events unreachable daemon", []string{"events", "-addr", "http://127.0.0.1:0", "j-1"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := cli.Code(run(tc.args)); got != tc.code {
				t.Errorf("run(%v): exit code %d, want %d", tc.args, got, tc.code)
			}
		})
	}
}
