package main

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/cluster/worker"
	"rumornet/internal/service"
)

// TestEventsFollowClusterCoordinator drives `rumorctl events -follow`
// against a real clustered coordinator with a real worker node: the
// follower attaches while the job is still queued, so everything the
// worker relays back — lease grant, its own lifecycle entries, relayed
// progress — must reach the client over the live SSE tail, ending with the
// terminal entry. The stream looks identical to a standalone daemon's: the
// relay is transparent to clients.
func TestEventsFollowClusterCoordinator(t *testing.T) {
	svc, err := service.New(service.Config{
		QueueDepth: 16,
		Cluster: service.ClusterConfig{
			Enabled:      true,
			LeaseTTL:     60 * time.Millisecond,
			ReapInterval: 5 * time.Millisecond,
			MaxAttempts:  3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	if _, err := svc.RegisterScenario("tiny", []int{2, 4, 8}, []float64{0.5, 0.3, 0.2}); err != nil {
		t.Fatal(err)
	}
	job, err := svc.Submit(service.Request{Type: service.JobODE, Scenario: "tiny",
		Params: service.Params{Lambda0: 0.02, Tf: 40, Points: 50}})
	if err != nil {
		t.Fatal(err)
	}

	// Attach the follower before any worker exists; runEvents returns when
	// the terminal entry closes the stream.
	type followed struct {
		out string
		err error
	}
	resCh := make(chan followed, 1)
	go func() {
		var sb strings.Builder
		err := runEvents([]string{"-addr", ts.URL, "-follow", job.ID}, &sb)
		resCh <- followed{sb.String(), err}
	}()
	time.Sleep(20 * time.Millisecond) // let the subscription attach first

	ctx, cancel := context.WithCancel(context.Background())
	wdone := make(chan error, 1)
	go func() {
		wdone <- worker.Run(ctx, worker.Options{
			Coordinator: ts.URL,
			ID:          "w-tail",
			PollMin:     2 * time.Millisecond,
			PollMax:     20 * time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-wdone; err != nil {
			t.Errorf("worker: %v", err)
		}
	})

	var res followed
	select {
	case res = <-resCh:
	case <-time.After(60 * time.Second):
		t.Fatal("follow stream did not close on the terminal entry")
	}
	if res.err != nil {
		t.Fatalf("runEvents -follow: %v\n%s", res.err, res.out)
	}
	for _, want := range []string{
		"queued",
		`lease granted to worker "w-tail"`,
		`executing on worker "w-tail"`, // worker-relayed, printed like any entry
		"progress   ode",               // relayed solver checkpoints
		`executor finished on worker "w-tail": succeeded`,
		"finished: succeeded",
	} {
		if !strings.Contains(res.out, want) {
			t.Errorf("followed stream missing %q:\n%s", want, res.out)
		}
	}
	if strings.Index(res.out, "executing on worker") > strings.Index(res.out, "finished: succeeded") {
		t.Errorf("worker entries arrived after the terminal entry:\n%s", res.out)
	}

	// On the wire, every frame of the job's stream carries its trace id —
	// the relayed worker entries are restamped into the same trace.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		frames++
		if !strings.Contains(line, `"trace_id":"`+job.TraceID+`"`) {
			t.Errorf("frame not correlated to trace %s: %s", job.TraceID, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if frames < 4 {
		t.Errorf("replay holds %d frames, want the full history", frames)
	}
}
