package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rumornet/internal/cli"
)

// cannedJobIndex serves a fixed GET /v1/jobs page in the rumord wire format,
// echoing the query back through the payload so the test can assert the
// client forwarded -limit and -status.
func cannedJobIndex(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("status") == "bogus" {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"status \"bogus\" unknown"}`)
			return
		}
		if r.URL.Query().Get("limit") == "2" {
			fmt.Fprint(w, `{"jobs":[
				{"id":"j-000003","type":"abm","scenario":"digg2009","status":"running","submitted_at":"2026-08-05T12:30:45Z"},
				{"id":"j-000002","type":"ode","scenario":"tiny","status":"failed","error":"boom","submitted_at":"2026-08-05T12:30:40Z","finished_at":"2026-08-05T12:30:41Z"}
			],"count":2,"total":5}`)
			return
		}
		fmt.Fprint(w, `{"jobs":[
			{"id":"j-000001","type":"threshold","scenario":"tiny","status":"succeeded","cache_hit":true,"submitted_at":"2026-08-05T12:30:30Z","finished_at":"2026-08-05T12:30:30Z"}
		],"count":1,"total":1}`)
	}))
}

func TestJobsSubcommand(t *testing.T) {
	ts := cannedJobIndex(t)
	defer ts.Close()

	var out strings.Builder
	if err := runJobs([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runJobs: %v", err)
	}
	got := out.String()
	for _, want := range []string{"ID", "j-000001", "threshold", "succeeded", "cache hit"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "showing") {
		t.Errorf("full page should not print a truncation note:\n%s", got)
	}

	// A truncated page names what was cut; the failed row carries its error.
	out.Reset()
	if err := runJobs([]string{"-addr", ts.URL, "-limit", "2"}, &out); err != nil {
		t.Fatalf("runJobs -limit 2: %v", err)
	}
	got = out.String()
	for _, want := range []string{"j-000003", "running", "boom", "(showing 2 of 5; raise -limit for more)"} {
		if !strings.Contains(got, want) {
			t.Errorf("limited output missing %q:\n%s", want, got)
		}
	}
	if strings.Index(got, "j-000003") > strings.Index(got, "j-000002") {
		t.Errorf("rows not newest-first:\n%s", got)
	}

	// The daemon's 400 surfaces as its JSON error message.
	err := runJobs([]string{"-addr", ts.URL, "-status", "bogus"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("bad status: err %v, want the daemon's message", err)
	}
}

func TestJobsFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"positional arg", []string{"extra"}},
		{"negative limit", []string{"-limit", "-1"}},
		{"unknown flag", []string{"-nope"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runJobs(tc.args, &strings.Builder{})
			if cli.Code(err) != 2 {
				t.Errorf("runJobs(%v): err %v, want usage error", tc.args, err)
			}
		})
	}
}
