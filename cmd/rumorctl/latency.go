package main

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// latencySummary is the slice of a daemon's /metrics page the top
// dashboard renders: the queue-wait p99 computed client-side from the
// rumor_job_latency_segment_seconds bucket counts, and the saturation
// detector's verdict.
type latencySummary struct {
	ok         bool    // scrape succeeded and the segment histogram exists
	count      int64   // queue-wait observations
	p99        float64 // upper bound on the p99, seconds
	inOverflow bool    // the p99 rank landed past the last finite bucket
	saturated  bool    // rumor_saturated gauge
}

// fetchLatency scrapes addr's /metrics. Failures degrade to a zero
// summary — the dashboard's primary data is the worker registry, and a
// daemon running with -disable-segment-metrics simply has no series.
func fetchLatency(addr string) latencySummary {
	resp, err := http.Get(strings.TrimSuffix(addr, "/") + "/metrics")
	if err != nil {
		return latencySummary{}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return latencySummary{}
	}
	return parseLatency(string(raw))
}

func parseLatency(text string) latencySummary {
	var s latencySummary
	type bucket struct {
		le  float64
		cum int64
	}
	var buckets []bucket
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "rumor_saturated "):
			s.saturated = strings.TrimSpace(strings.TrimPrefix(line, "rumor_saturated ")) != "0"
		case strings.HasPrefix(line, `rumor_job_latency_segment_seconds_bucket{`) &&
			strings.Contains(line, `segment="queue_wait"`):
			le, cum, ok := parseBucketLine(line)
			if ok {
				buckets = append(buckets, bucket{le, cum})
			}
		}
	}
	if len(buckets) == 0 {
		return s
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum // the +Inf bucket holds the count
	s.ok = true
	s.count = total
	if total == 0 {
		return s
	}
	rank := int64(math.Ceil(0.99 * float64(total)))
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) {
				// Past the last finite bucket: report that bound and mark it.
				s.p99 = buckets[len(buckets)-2].le
				s.inOverflow = true
			} else {
				s.p99 = b.le
			}
			return s
		}
	}
	return s
}

// parseBucketLine pulls le and the cumulative count out of one exposition
// line like `rumor_job_latency_segment_seconds_bucket{segment="queue_wait",le="0.25"} 12`.
func parseBucketLine(line string) (le float64, cum int64, ok bool) {
	i := strings.Index(line, `le="`)
	if i < 0 {
		return 0, 0, false
	}
	rest := line[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, 0, false
	}
	le, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		return 0, 0, false
	}
	fields := strings.Fields(rest[j+1:])
	if len(fields) == 0 {
		return 0, 0, false
	}
	cum, err = strconv.ParseInt(fields[len(fields)-1], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return le, cum, true
}

// renderLatency writes the dashboard's latency line.
func renderLatency(out io.Writer, s latencySummary) {
	if !s.ok {
		fmt.Fprintln(out, "latency: no segment histograms (metrics unreachable or disabled)")
		return
	}
	if s.count == 0 {
		fmt.Fprintln(out, "latency: no jobs executed yet")
		return
	}
	bound := "<="
	if s.inOverflow {
		bound = ">"
	}
	line := fmt.Sprintf("latency: queue-wait p99 %s%s (%d jobs)", bound, fmtSeconds(s.p99), s.count)
	if s.saturated {
		line += "  [SATURATED]"
	}
	fmt.Fprintln(out, line)
}

// fmtSeconds renders a duration bound compactly: sub-second values in
// milliseconds, the rest in seconds.
func fmtSeconds(v float64) string {
	if v < 1 {
		return strconv.FormatFloat(v*1e3, 'g', 3, 64) + "ms"
	}
	return strconv.FormatFloat(v, 'g', 3, 64) + "s"
}
