package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rumornet/internal/cli"
	"rumornet/internal/service"
)

// newSurfaceDaemon stands up a real in-process rumord so the surfaces/query
// subcommands exercise the whole stack: sweep expansion, batch grid jobs,
// the fold into a surface artifact, and interpolated serving.
func newSurfaceDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

// TestSurfacesBuildListQuery is the CLI end-to-end: build a tiny threshold
// surface with -wait, see it in the listing, get a microsecond interpolated
// answer in-hull, and fall back to the exact path out-of-hull.
func TestSurfacesBuildListQuery(t *testing.T) {
	ts := newSurfaceDaemon(t)

	var out strings.Builder
	err := runSurfaces([]string{"-addr", ts.URL, "-build", "-type", "threshold",
		"-axis", "eps1=0.1:0.4:2", "-axis", "eps2=0.02:0.1:2", "-wait"}, &out)
	if err != nil {
		t.Fatalf("surfaces -build: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "ready") {
		t.Fatalf("build did not settle ready:\n%s", got)
	}

	out.Reset()
	if err := runSurfaces([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("surfaces list: %v", err)
	}
	got := out.String()
	for _, want := range []string{"KEY", "threshold", "ready", "4/4", "eps1[2]"} {
		if !strings.Contains(got, want) {
			t.Errorf("listing missing %q:\n%s", want, got)
		}
	}

	// In-hull: answered from the surface with per-field error bounds.
	out.Reset()
	err = runQuery([]string{"-addr", ts.URL, "-type", "threshold",
		"-p", "eps1=0.17", "-p", "eps2=0.05"}, &out)
	if err != nil {
		t.Fatalf("query in-hull: %v", err)
	}
	got = out.String()
	for _, want := range []string{"answered from surface", "ERROR BOUND", "r0"} {
		if !strings.Contains(got, want) {
			t.Errorf("hit output missing %q:\n%s", want, got)
		}
	}

	// Out-of-hull: the exact-job fallback, with the reason surfaced.
	out.Reset()
	err = runQuery([]string{"-addr", ts.URL, "-type", "threshold",
		"-p", "eps1=0.9", "-p", "eps2=0.05"}, &out)
	if err != nil {
		t.Fatalf("query out-of-hull: %v", err)
	}
	if got := out.String(); !strings.Contains(got, "fell back") {
		t.Errorf("fallback not reported:\n%s", got)
	}
}

// TestSurfacesEmptyListing checks the friendly empty state.
func TestSurfacesEmptyListing(t *testing.T) {
	ts := newSurfaceDaemon(t)
	var out strings.Builder
	if err := runSurfaces([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no surfaces resident") {
		t.Errorf("empty listing not announced:\n%s", out.String())
	}
}

func TestSurfacesFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"extra"},
		{"-nope"},
		{"-axis", "eps1=0.1:0.4:4"},         // -axis without -build
		{"-build"},                          // -build without axes
		{"-build", "-axis", "eps1"},         // no grid
		{"-build", "-axis", "eps1=0.1:0.4"}, // not min:max:points
		{"-build", "-axis", "eps1=a,b"},     // unparsable values
		{"-build", "-axis", "=0.1:0.4:4"},   // empty name
		{"-build", "-axis", "eps1=x:0.4:4"}, // unparsable grid
	} {
		if err := runSurfaces(args, &strings.Builder{}); cli.Code(err) != 2 {
			t.Errorf("runSurfaces(%v): err %v, want usage error", args, err)
		}
	}
}

func TestQueryFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"extra"},
		{"-nope"},
		{"-p", "eps1"}, // not name=value
		{"-p", "=3"},   // empty name
	} {
		if err := runQuery(args, &strings.Builder{}); cli.Code(err) != 2 {
			t.Errorf("runQuery(%v): err %v, want usage error", args, err)
		}
	}
}

// TestTopSurfaceLine serves a canned /v1/stats surface section and checks
// the dashboard renders the resident-surface line with the hit rate.
func TestTopSurfaceLine(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"workers":[],"count":0}`)
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"surface":{"loaded":2,"building":1,"failed":0,"bytes":2048,
			"queries":140,"hits":120,"fallbacks":20,"hit_rate":0.857}}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out strings.Builder
	if err := runTop([]string{"-addr", ts.URL}, &out); err != nil {
		t.Fatalf("runTop: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"surfaces: 2 loaded (2.0KiB)",
		"1 building",
		"hit rate 85.7% (120 hits / 20 fallbacks)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dashboard missing %q:\n%s", want, got)
		}
	}

	// A daemon without the stats endpoint degrades to the empty line.
	noStats := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/workers" {
			fmt.Fprint(w, `{"workers":[],"count":0}`)
			return
		}
		http.NotFound(w, r)
	}))
	defer noStats.Close()
	out.Reset()
	if err := runTop([]string{"-addr", noStats.URL}, &out); err != nil {
		t.Fatalf("runTop (no stats): %v", err)
	}
	if !strings.Contains(out.String(), "surfaces: none resident") {
		t.Errorf("missing-stats dashboard did not degrade:\n%s", out.String())
	}
}
