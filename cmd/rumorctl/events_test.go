package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rumornet/internal/obs/journal"
)

// cannedSSE serves a fixed journal history for j-000001 in the rumord wire
// format — including a heartbeat comment the client must skip — and a JSON
// error for everything else.
func cannedSSE(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j-000001/events" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"job \"j-424242\" not found"}`)
			return
		}
		if r.URL.Query().Get("follow") != "0" {
			t.Errorf("default invocation should request replay only, got query %q", r.URL.RawQuery)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: lifecycle\ndata: {\"seq\":1,\"job_id\":\"j-000001\",\"kind\":\"lifecycle\",\"msg\":\"queued\"}\n\n")
		fmt.Fprint(w, ": heartbeat\n\n")
		fmt.Fprint(w, "id: 2\nevent: progress\ndata: {\"seq\":2,\"job_id\":\"j-000001\",\"kind\":\"progress\",\"stage\":\"fbsm\",\"step\":3,\"total\":250,\"t\":0,\"value\":0.125,\"cost\":42.5}\n\n")
		fmt.Fprint(w, "id: 3\nevent: invariant\ndata: {\"seq\":3,\"job_id\":\"j-000001\",\"kind\":\"invariant\",\"check\":\"mass_conservation\",\"msg\":\"mass defect 1 exceeds tolerance\"}\n\n")
		fmt.Fprint(w, "id: 4\nevent: lifecycle\ndata: {\"seq\":4,\"job_id\":\"j-000001\",\"kind\":\"lifecycle\",\"msg\":\"finished: succeeded\",\"final\":true}\n\n")
	}))
}

func TestEventsSubcommand(t *testing.T) {
	ts := cannedSSE(t)
	defer ts.Close()

	var out strings.Builder
	if err := runEvents([]string{"-addr", ts.URL, "j-000001"}, &out); err != nil {
		t.Fatalf("runEvents: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"queued",
		"progress   fbsm 3/250",
		"value=0.125 cost=42.5",
		"INVARIANT  mass_conservation: mass defect 1 exceeds tolerance",
		"finished: succeeded",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "heartbeat") {
		t.Errorf("heartbeat comment leaked into output:\n%s", got)
	}
	if lines := strings.Count(got, "\n"); lines != 4 {
		t.Errorf("got %d lines, want 4:\n%s", lines, got)
	}

	// An unknown job surfaces the daemon's JSON error message.
	err := runEvents([]string{"-addr", ts.URL, "j-424242"}, &out)
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("unknown job: err %v, want the daemon's not-found message", err)
	}
}

// TestFormatEntry pins the per-kind line shapes the streaming printer emits.
func TestFormatEntry(t *testing.T) {
	at := time.Date(2026, 8, 5, 12, 30, 45, 500e6, time.UTC)
	cases := []struct {
		e    journal.Entry
		want string
	}{
		{journal.Entry{Seq: 1, Time: at, Kind: journal.KindLifecycle, Msg: "started"},
			"     1  12:30:45.500  lifecycle  started"},
		{journal.Entry{Seq: 2, Time: at, Kind: journal.KindProgress, Stage: "ode", Step: 10, Total: 100, T: 1.5, Value: 0.25},
			"     2  12:30:45.500  progress   ode 10/100 t=1.5 value=0.25"},
		{journal.Entry{Seq: 3, Time: at, Kind: journal.KindInvariant, Check: "theta_range", Msg: "theta 1.5 outside [0,1]"},
			"     3  12:30:45.500  INVARIANT  theta_range: theta 1.5 outside [0,1]"},
	}
	for _, tc := range cases {
		if got := formatEntry(tc.e); got != tc.want {
			t.Errorf("formatEntry(%+v)\n got %q\nwant %q", tc.e, got, tc.want)
		}
	}
}
