package rumornet

// End-to-end integration test: the full pipeline a downstream user would
// run — load a network, derive the model, analyze the threshold, plan the
// optimal countermeasures, serialize the policy, reload it and verify the
// replayed cost, then cross-check the model against the agent-based
// simulator on the same graph.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))

	// 1. Build a scale-free network and persist/reload it as an edge list.
	g0, err := NewBarabasiAlbert(3000, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g0.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g, _, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != g0.NumEdges() {
		t.Fatalf("edge-list round trip lost edges: %d vs %d", g.NumEdges(), g0.NumEdges())
	}

	// 2. Model the rumor on that network; verify it is epidemic.
	m, err := NewModelFromGraph(g, Params{
		Alpha:  0.01,
		Eps1:   0.03,
		Eps2:   0.03,
		Lambda: LambdaLinear(0.3),
		Omega:  OmegaSaturating(0.5, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := m.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if eq.Verdict != VerdictEpidemic {
		t.Fatalf("scenario not epidemic (r0 = %v)", eq.R0)
	}
	if eq.Positive == nil || eq.Positive.Theta <= 0 {
		t.Fatal("epidemic verdict without a positive equilibrium")
	}

	// 3. Threshold planning: the required ε2 must flip the verdict.
	needEps2, err := m.RequiredEps2(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if m.R0At(m.Params().Eps1, needEps2) > 1 {
		t.Fatalf("RequiredEps2(0.9) = %v does not subdue the rumor", needEps2)
	}

	// 4. Optimal control, serialization, replay.
	ic, err := m.UniformIC(0.05)
	if err != nil {
		t.Fatal(err)
	}
	cost := ControlCost{C1: 5, C2: 10}
	pol, err := OptimizeCountermeasures(m, ic, 30, ControlOptions{
		Grid:    150,
		MaxIter: 250,
		Eps1Max: 0.5,
		Eps2Max: 0.5,
		Cost:    cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Converged {
		t.Errorf("FBSM did not converge in %d sweeps", pol.Iterations)
	}
	var sbuf bytes.Buffer
	if err := pol.Schedule.WriteJSON(&sbuf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadScheduleJSON(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	bd, _, err := EvaluatePolicyCost(m, ic, loaded, cost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Total-pol.Cost.Total) > 1e-9*(1+pol.Cost.Total) {
		t.Errorf("replayed cost %v != optimized cost %v", bd.Total, pol.Cost.Total)
	}

	// 5. The optimized policy beats doing nothing on the same objective.
	idle, err := m.Simulate(ic, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	idleTerminal := 0.0
	_, yf := idle.Last()
	for i := 0; i < m.N(); i++ {
		idleTerminal += m.I(yf, i)
	}
	if pol.Cost.Total >= idleTerminal {
		t.Errorf("optimized J = %v not below do-nothing terminal %v",
			pol.Cost.Total, idleTerminal)
	}

	// 6. Cross-check with the agent-based simulator: under the strong
	// blocking rate the ABM outbreak must collapse too.
	res, err := RunABM(g, ABMConfig{
		Lambda: LambdaLinear(0.3),
		Omega:  OmegaSaturating(0.5, 0.5),
		Eps1:   0.03,
		Eps2:   needEps2 * 2,
		I0:     0.05,
		Dt:     0.5,
		Steps:  120,
		Mode:   ABMQuenched,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalI() > 0.01 {
		t.Errorf("ABM final infection %v despite blocking above the required rate", res.FinalI())
	}
}
