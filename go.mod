module rumornet

go 1.22
