#!/bin/sh
# bench.sh — record the parallel-ABM benchmark suite into BENCH_PR1.json.
#
# Runs the serial-vs-parallel pairs introduced with internal/par:
#   - internal/abm: BenchmarkABMQuenchedStep{Serial,Parallel},
#                   BenchmarkMeanRun{Serial,Parallel}
#   - root:         BenchmarkValidationABM{Serial,Parallel}
#     (the Quick Digg-scale end-to-end cross-validation)
#
# and writes machine metadata plus every benchmark line as JSON, so the
# speedup at a given core count is reproducible. Usage:
#
#   scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_PR1.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkABMQuenchedStep|BenchmarkMeanRun' \
	-benchmem ./internal/abm | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkValidationABM(Serial|Parallel)$' \
	-benchmem . | tee -a "$tmp"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "cpus": %s,\n' "$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)"
	printf '  "note": "speedup = serial ns_per_op / parallel ns_per_op of each pair; parallel gains require cpus > 1 and the outputs are bit-identical either way",\n'
	printf '  "benchmarks": [\n'
	awk '/^Benchmark/ {
		sep = first++ ? ",\n" : ""
		printf "%s    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
			sep, $1, $2, $3, $5, $7
	} END { print "" }' "$tmp"
	printf '  ]\n'
	printf '}\n'
} > "$out"

echo "wrote $out"
