#!/bin/sh
# bench.sh — record a benchmark suite as JSON.
#
# Suites:
#   pr1 (default) — the parallel-ABM pairs introduced with internal/par:
#       internal/abm: BenchmarkABMQuenchedStep{Serial,Parallel},
#                     BenchmarkMeanRun{Serial,Parallel}
#       root:         BenchmarkValidationABM{Serial,Parallel}
#     speedup = serial ns_per_op / parallel ns_per_op of each pair.
#   pr2 — the rumord service-layer latencies (internal/service):
#       BenchmarkJobColdODE   full submit→execute→poll, cache miss
#       BenchmarkJobCacheHit  identical request served from the result cache
#       BenchmarkSubmitReject validation fast-fail
#     the cold/cache-hit ratio is the PR 2 caching claim.
#   pr3 — progress-hook overhead on the solver hot loops:
#       internal/ode: BenchmarkSolveFixedProgress{Off,On}
#       internal/abm: BenchmarkRunProgress{Off,On}
#     overhead = on ns_per_op / off ns_per_op - 1 per pair; the PR 3
#     claim is < 5% on the ODE step loop.
#   pr4 — flight-recorder hook overhead on the same hot loops:
#       internal/obs/journal: BenchmarkODEJournal{Off,On},
#                             BenchmarkABMJournal{Off,On}
#     On attaches the full per-checkpoint service path (stage-span
#     lookup, invariant monitor, journal ring append); the PR 4 claim
#     is < 5% overhead on both pairs.
#   pr5 — durable-store cost (internal/service, internal/store):
#       BenchmarkJobThroughputWAL{Off,On}  full job round trips, in-memory
#                                          vs -data-dir with batched fsync
#       BenchmarkRecovery1k                cold-start replay of a 1k-record
#                                          WAL into pending state
#       BenchmarkWALAppend, BenchmarkPutResult  raw store primitives
#     the PR 5 claim is WAL-on throughput within 5% of WAL-off.
#   pr7 — distributed-mode throughput (internal/cluster/worker):
#       BenchmarkClusterODE/w{1,2,4}     saturated Digg2009 ODE workload,
#                                        coordinator + N in-process worker
#                                        nodes over real HTTP
#       BenchmarkStandaloneODE/w{1,2,4}  the same workload on the in-process
#                                        pool at the same widths
#       Benchmark{Cluster,Standalone}Threshold  near-zero-compute pair whose
#                                        ns_per_op difference is the per-job
#                                        coordinator overhead (lease +
#                                        heartbeat + result round trips)
#     jobs/sec = 1e9 / ns_per_op; the PR 7 claim is that ODE throughput
#     scales with worker count while the per-job overhead stays small
#     against solver-bound jobs.
#   pr8 — telemetry-relay overhead (internal/cluster/worker):
#       BenchmarkClusterThresholdRelay{Off,On}  the near-zero-compute
#                                        threshold workload through one
#                                        worker node with a fast heartbeat,
#                                        relay disabled vs full relay
#                                        (journal + spans + registry
#                                        snapshot + health sample)
#     overhead = on ns_per_op / off ns_per_op - 1; the PR 8 claim is < 5%.
#     Gate against the PR 7 baseline with
#     scripts/benchdiff.sh BENCH_PR7.json BENCH_PR8.json (the shared
#     throughput names must not regress either).
#   pr6 — solver hot-loop kernels and multi-core scaling:
#       internal/core: BenchmarkTheta, BenchmarkRHSDiggScale   fused-Θ RHS
#       internal/ode:  BenchmarkStepCost/{heun,rk4},           zero-alloc
#                      BenchmarkSolveFixedDiggScale            steppers
#       internal/abm:  BenchmarkABMQuenchedStep{serial,parallel},
#                      BenchmarkMeanRun{serial,parallel} at -cpu 1,4,8
#     kernel benches are pinned to -cpu 1; the ABM pairs sweep
#     GOMAXPROCS (the -N name suffix; absent means 1) and the JSON gets
#     a "scaling" block: speedup = serial@1 ns / parallel@c ns,
#     efficiency = speedup / c. Meaningful speedups need real cores —
#     on a 1-cpu container every efficiency degenerates to ~1/c.
#
# Every suite records the machine ("cpus", "gomaxprocs") and every
# benchmark entry carries the GOMAXPROCS it ran at, parsed from the
# go-test name suffix.
#
# Usage:
#
#   scripts/bench.sh                 # pr1 -> BENCH_PR1.json
#   scripts/bench.sh pr2             # pr2 -> BENCH_PR2.json
#   scripts/bench.sh pr3             # pr3 -> BENCH_PR3.json
#   scripts/bench.sh pr4             # pr4 -> BENCH_PR4.json
#   scripts/bench.sh pr5             # pr5 -> BENCH_PR5.json
#   scripts/bench.sh pr6             # pr6 -> BENCH_PR6.json
#   scripts/bench.sh pr7             # pr7 -> BENCH_PR7.json
#   scripts/bench.sh pr8             # pr8 -> BENCH_PR8.json
#   scripts/bench.sh pr10            # pr10 -> BENCH_PR10.json (delegates
#                                      to scripts/loadgen.sh pr10: the
#                                      surface-hit / fallback / cold-solve
#                                      query-mix sweep)
#   scripts/bench.sh pr2 out.json    # explicit output path
set -eu

cd "$(dirname "$0")/.."
suite="${1:-pr1}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

case "$suite" in
pr1)
	out="${2:-BENCH_PR1.json}"
	note="speedup = serial ns_per_op / parallel ns_per_op of each pair; parallel gains require cpus > 1 and the outputs are bit-identical either way"
	go test -run '^$' -bench 'BenchmarkABMQuenchedStep|BenchmarkMeanRun' \
		-benchmem ./internal/abm | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkValidationABM(Serial|Parallel)$' \
		-benchmem . | tee -a "$tmp"
	;;
pr2)
	out="${2:-BENCH_PR2.json}"
	note="cold = submit->execute->poll of a cache-missing ODE job; cache hit = identical request completed synchronously from the result cache; their ns_per_op ratio is the caching speedup"
	go test -run '^$' -bench 'BenchmarkJob|BenchmarkSubmitReject' \
		-benchmem ./internal/service | tee -a "$tmp"
	;;
pr3)
	out="${2:-BENCH_PR3.json}"
	note="overhead = on ns_per_op / off ns_per_op - 1 per pair; Off runs the hot loop with no progress hook, On with a counting hook at the default cadence; the ODE pair must stay under 5%"
	go test -run '^$' -bench 'BenchmarkSolveFixedProgress(Off|On)$' \
		-benchmem ./internal/ode | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkRunProgress(Off|On)$' \
		-benchmem ./internal/abm | tee -a "$tmp"
	;;
pr4)
	out="${2:-BENCH_PR4.json}"
	note="overhead = on ns_per_op / off ns_per_op - 1 per pair; Off runs the solver hot loop bare, On attaches the service's per-checkpoint flight-recorder path (stage-span lookup, invariant monitor, journal append); both pairs must stay under 5%"
	go test -run '^$' -bench 'Benchmark(ODE|ABM)Journal(Off|On)$' \
		-benchmem ./internal/obs/journal | tee -a "$tmp"
	;;
pr5)
	out="${2:-BENCH_PR5.json}"
	note="WALOff runs the standard workload (Digg2009 ODE jobs, worker pool kept saturated) in-memory, WALOn adds the durable store with the default batched-fsync policy; their ns_per_op ratio is the durability cost (claim: < 5%). Recovery1k replays a 1000-record WAL cold"
	go test -run '^$' -bench 'BenchmarkJobThroughputWAL(Off|On)$' \
		-benchmem ./internal/service | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkRecovery1k$|BenchmarkWALAppend$|BenchmarkPutResult$' \
		-benchmem ./internal/store | tee -a "$tmp"
	;;
pr6)
	out="${2:-BENCH_PR6.json}"
	scaling=1
	note="kernel benches (core RHS/Theta, ode steppers) pinned to GOMAXPROCS=1; ABM serial/parallel pairs swept at -cpu 1,4,8; scaling lists speedup = ns@1 / ns@c and efficiency = speedup/c per pair — a 1-cpu host cannot show real speedup, rerun on multicore hardware for the scaling claim"
	go test -run '^$' -bench 'BenchmarkTheta$|BenchmarkRHSDiggScale$' \
		-benchmem -cpu 1 ./internal/core | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkStepCost|BenchmarkSolveFixedDiggScale$' \
		-benchmem -cpu 1 ./internal/ode | tee -a "$tmp"
	go test -run '^$' -bench 'BenchmarkABMQuenchedStep|BenchmarkMeanRun' \
		-benchmem -cpu 1,4,8 ./internal/abm | tee -a "$tmp"
	;;
pr7)
	out="${2:-BENCH_PR7.json}"
	note="ClusterODE/wN runs the saturated Digg2009 ODE workload through a coordinator with N in-process worker nodes over real HTTP, StandaloneODE/wN the identical workload on the in-process pool; jobs/sec = 1e9 / ns_per_op and throughput should scale with N (needs real cores). The Threshold pair's ns_per_op difference is the measured per-job coordinator overhead: lease poll + heartbeat + result upload round trips"
	go test -run '^$' -bench 'Benchmark(Cluster|Standalone)ODE/|Benchmark(Cluster|Standalone)Threshold$' \
		-benchmem ./internal/cluster/worker | tee -a "$tmp"
	;;
pr8)
	out="${2:-BENCH_PR8.json}"
	note="RelayOff runs the near-zero-compute threshold workload through a 1-node cluster with the telemetry relay disabled, RelayOn with the full relay (worker journal entries, finished stage spans and the health sample on every heartbeat and result upload; registry snapshots throttled to one per 250ms window across channels) at a forced-fast 2ms heartbeat; overhead = on ns_per_op / off ns_per_op - 1, claim < 5%; every name records the fastest of 3 runs to keep shared-host noise out of the comparison. Also re-records the pr7 throughput names so scripts/benchdiff.sh BENCH_PR7.json BENCH_PR8.json gates the relay against the pre-telemetry baseline"
	# -count 3 + the emitter's fastest-run-per-name rule: single samples on
	# a shared host swing by ±10%, which would drown the 5% claim in noise.
	go test -run '^$' -bench 'BenchmarkClusterThresholdRelay(Off|On)$' \
		-benchmem -count 3 ./internal/cluster/worker | tee -a "$tmp"
	go test -run '^$' -bench 'Benchmark(Cluster|Standalone)ODE/|Benchmark(Cluster|Standalone)Threshold$' \
		-benchmem -count 3 ./internal/cluster/worker | tee -a "$tmp"
	;;
pr10)
	# The PR 10 artifact is an open-loop latency sweep, not a go-bench run:
	# delegate to loadgen.sh's pr10 suite (surface-hit vs fallback vs
	# cold-solve query mix on the selfhosted daemon -> BENCH_PR10.json).
	exec sh scripts/loadgen.sh pr10 "${2:-BENCH_PR10.json}"
	;;
*)
	echo "bench.sh: unknown suite '$suite' (want pr1, pr2, pr3, pr4, pr5, pr6, pr7, pr8 or pr10)" >&2
	exit 2
	;;
esac

ncpu="$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)"
{
	printf '{\n'
	printf '  "suite": "%s",\n' "$suite"
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "goos": "%s",\n' "$(go env GOOS)"
	printf '  "goarch": "%s",\n' "$(go env GOARCH)"
	printf '  "cpus": %s,\n' "$ncpu"
	printf '  "gomaxprocs": %s,\n' "${GOMAXPROCS:-$ncpu}"
	printf '  "note": "%s",\n' "$note"
	# go test names benchmarks "Name-N" when GOMAXPROCS is N != 1 (the -cpu
	# sweep); a bare name means 1. The suffix becomes each entry's
	# "gomaxprocs". A name repeated by -count keeps its fastest run — the
	# minimum is the least noise-contaminated sample of a fixed workload.
	# With scaling=1, serial@1 / parallel@c pairs additionally produce a
	# "scaling" block.
	awk -v scaling="${scaling:-0}" '
	/^Benchmark/ {
		name = $1; gmp = 1; base = $1
		if (match(name, /-[0-9]+$/)) {
			gmp = substr(name, RSTART + 1) + 0
			base = substr(name, 1, RSTART - 1)
		}
		if (name in idx) {
			i = idx[name]
			if ($3 + 0 < ns[i] + 0) {
				iters[i] = $2; ns[i] = $3; bytes[i] = $5; allocs[i] = $7
				ns_at[base "@" gmp] = $3
			}
			next
		}
		i = ++cnt; idx[name] = i
		names[i] = name; bases[i] = base; gmps[i] = gmp
		iters[i] = $2; ns[i] = $3; bytes[i] = $5; allocs[i] = $7
		ns_at[base "@" gmp] = $3
	}
	END {
		printf "  \"benchmarks\": [\n"
		for (i = 1; i <= cnt; i++)
			printf "    {\"name\": \"%s\", \"gomaxprocs\": %d, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
				names[i], gmps[i], iters[i], ns[i], bytes[i], allocs[i], (i < cnt ? "," : "")
		printf "  ]"
		if (scaling) {
			m = 0
			for (i = 1; i <= cnt; i++) {
				if (bases[i] !~ /\/parallel$/) continue
				serial = bases[i]; sub(/\/parallel$/, "/serial", serial)
				if (!((serial "@" 1) in ns_at)) continue
				sp = ns_at[serial "@" 1] / ns[i]
				buf[++m] = sprintf("    {\"name\": \"%s\", \"gomaxprocs\": %d, \"speedup\": %.3f, \"efficiency\": %.3f}", \
					bases[i], gmps[i], sp, sp / gmps[i])
			}
			if (m) {
				printf ",\n  \"scaling\": [\n"
				for (j = 1; j <= m; j++) printf "%s%s\n", buf[j], (j < m ? "," : "")
				printf "  ]"
			}
		}
		printf "\n"
	}' "$tmp"
	printf '}\n'
} > "$out"

echo "wrote $out"
