#!/bin/sh
# benchdiff.sh — compare two BENCH_*.json files produced by bench.sh or
# scripts/loadgen.sh.
#
# For every benchmark name present in both files it prints the old and new
# ns_per_op and the relative delta; names whose ns_per_op grew by more than
# the threshold (default 5%) are flagged as regressions and make the script
# exit 1, so it can gate a CI lane:
#
#   scripts/benchdiff.sh BENCH_PR6.json new.json
#   scripts/benchdiff.sh -t 10 old.json new.json   # 10% threshold
#
# Entries are matched on the full benchmark name (including the -N
# GOMAXPROCS suffix), so a -cpu sweep diffs per-width. Latency artifacts
# (loadgen.sh) contribute one entry per phase/endpoint pair, named
# latency:<phase>/<endpoint>:p99_ms and diffed on the p99 with the same
# threshold — offered rates must match between the two files for the
# comparison to mean anything, which matching names enforce as long as
# phases are named after their rates. Remember that cross-run numbers are
# only comparable on the same quiet machine; prefer several runs of each
# side.
set -eu

threshold=5
if [ "${1:-}" = "-t" ]; then
	threshold="$2"
	shift 2
fi
if [ $# -ne 2 ]; then
	echo "usage: scripts/benchdiff.sh [-t pct] OLD.json NEW.json" >&2
	exit 2
fi
old="$1"
new="$2"
[ -r "$old" ] || { echo "benchdiff.sh: cannot read $old" >&2; exit 2; }
[ -r "$new" ] || { echo "benchdiff.sh: cannot read $new" >&2; exit 2; }

# bench.sh and loadgen.sh write one entry per line, so a line-oriented
# parse is enough — no JSON tooling needed in the container. Latency
# entries (json.Marshal output, no space after the colon) become
# latency:<phase>/<endpoint>:p99_ms pseudo-benchmarks.
extract() {
	awk '
	/"name":/ && /"ns_per_op":/ {
		line = $0
		if (match(line, /"name": "[^"]*"/)) {
			name = substr(line, RSTART + 9, RLENGTH - 10)
			if (match(line, /"ns_per_op": [0-9.eE+-]+/))
				printf "%s %s\n", name, substr(line, RSTART + 13, RLENGTH - 13)
		}
	}
	/"endpoint":/ && /"p99_ms":/ {
		line = $0
		if (!match(line, /"phase":"[^"]*"/)) next
		ph = substr(line, RSTART + 9, RLENGTH - 10)
		if (!match(line, /"endpoint":"[^"]*"/)) next
		ep = substr(line, RSTART + 12, RLENGTH - 13)
		if (match(line, /"p99_ms":[0-9.eE+-]+/))
			printf "latency:%s/%s:p99_ms %s\n", ph, ep, substr(line, RSTART + 9, RLENGTH - 9)
	}' "$1"
}

tmpo="$(mktemp)"
tmpn="$(mktemp)"
trap 'rm -f "$tmpo" "$tmpn"' EXIT
extract "$old" > "$tmpo"
extract "$new" > "$tmpn"

awk -v thr="$threshold" -v oldfile="$old" -v newfile="$new" '
NR == FNR { ns[$1] = $2; next }
{
	if (!($1 in ns)) { onlynew++; next }
	seen[$1] = 1
	delta = ($2 - ns[$1]) / ns[$1] * 100
	flag = ""
	if (delta > thr) { flag = "  REGRESSION"; bad++ }
	else if (delta < -thr) flag = "  improved"
	printf "%-60s %14.1f %14.1f %+8.1f%%%s\n", $1, ns[$1], $2, delta, flag
	matched++
}
END {
	for (n in ns) if (!(n in seen)) onlyold++
	if (!matched) { printf "benchdiff: no common benchmark names between %s and %s\n", oldfile, newfile; exit 2 }
	if (onlyold) printf "(%d entries only in %s)\n", onlyold, oldfile
	if (onlynew) printf "(%d entries only in %s)\n", onlynew, newfile
	if (bad) { printf "benchdiff: %d regression(s) beyond %s%%\n", bad, thr; exit 1 }
	printf "benchdiff: ok (threshold %s%%)\n", thr
}' "$tmpo" "$tmpn"
