#!/bin/sh
# loadgen.sh — record the open-loop latency artifacts (BENCH_PR9.json and,
# with the pr10 suite, BENCH_PR10.json).
#
# Runs the open-loop rumorload sweep against a selfhosted rumord: one
# worker, a 250ms queue-wait p99 budget, and a rate ladder whose top rungs
# sit well past one worker's capacity on the built-in Digg2009 ODE job
# (~38ms each, so ~26 jobs/s; half the offered keys are cache-cold). The
# artifact records, per phase, offered vs achieved rate, the saturation
# verdict, and p50/p90/p99/p999 for the submit round trip, the end-to-end
# path and the three server-attributed segments (queue wait / execute /
# serialize) — all latencies coordinated-omission-correct, measured from
# the scheduled send time.
#
# The sweep is followed by the segment-hook overhead pair
# (BenchmarkJobSegmentsOff/On, fastest of 3 runs each) merged into the
# same file as a "benchmarks" array, so one
#
#   scripts/benchdiff.sh BENCH_PR9.json new.json
#
# gates both the per-phase p99s and the hook's ns_per_op with the 5%
# threshold.
#
# The pr10 suite instead records the response-surface serving story
# (DESIGN.md §15): the same selfhosted single-worker daemon, but half the
# offered requests are GET /v1/query against a precomputed threshold
# surface (built before the sweep starts) with a slice aimed outside its
# hull to force the exact-job fallback. At the top rung the cold-solve
# path saturates — the detector sheds the batch submissions — while the
# interactive surface hits keep answering in microseconds; the artifact's
# per-phase "query" vs "e2e" p99s and the surface_hits/surface_fallbacks
# split are the PR 10 claim. Diff with the same gate:
#
#   scripts/benchdiff.sh BENCH_PR10.json new.json
#
# Usage:
#
#   scripts/loadgen.sh                 # -> BENCH_PR9.json
#   scripts/loadgen.sh out.json        # explicit output path
#   scripts/loadgen.sh pr10            # -> BENCH_PR10.json
#   scripts/loadgen.sh pr10 out.json   # pr10, explicit output path
#   RATES=20,60 DURATION=3s scripts/loadgen.sh   # smaller sweep
set -eu

cd "$(dirname "$0")/.."
suite=pr9
case "${1:-}" in
pr9 | pr10)
	suite="$1"
	shift
	;;
esac

if [ "$suite" = pr10 ]; then
	out="${1:-BENCH_PR10.json}"
	rates="${RATES:-5,100}"
	duration="${DURATION:-5s}"
	mix="${MIX:-fbsm=1}"
	go run ./cmd/rumorload -selfhost -selfhost-workers 1 \
		-selfhost-saturation-budget 250ms \
		-rates "$rates" -duration "$duration" -mix "$mix" -hot 0.5 \
		-query 0.5 -query-fallback 0.1 \
		-poll 25ms -suite pr10-surface \
		-note "surface serving sweep, selfhost 1 worker, built-in Digg2009 scenario; half the offered requests are /v1/query against a prebuilt threshold eps1 x eps2 surface (10% aimed out-of-hull to force the exact-job fallback), the rest cold FBSM optimizations (~265ms each => ~3.8 jobs/s capacity, so the top rung saturates, backs the queue up to its cap and sheds); claim: the query endpoint's p99 stays >= 100x below the cold-solve e2e p99 at the saturating rate" \
		-out "$out"
	echo "wrote $out"
	exit 0
fi

out="${1:-BENCH_PR9.json}"
rates="${RATES:-10,25,50,100}"
duration="${DURATION:-5s}"
mix="${MIX:-ode=1}"

tmpart="$(mktemp)"
tmpbench="$(mktemp)"
trap 'rm -f "$tmpart" "$tmpbench"' EXIT

go run ./cmd/rumorload -selfhost -selfhost-workers 1 \
	-selfhost-saturation-budget 250ms \
	-rates "$rates" -duration "$duration" -mix "$mix" -hot 0.5 \
	-poll 25ms -suite pr9-latency \
	-note "open-loop sweep, selfhost 1 worker, built-in Digg2009 scenario (~38ms/ODE job => ~26 jobs/s capacity), 250ms queue-wait p99 budget; latencies measured from scheduled send time (coordinated-omission-correct); benchmarks = segment-hook overhead pair, fastest of 3, claim < 5%" \
	-out "$tmpart"

go test -run '^$' -bench 'BenchmarkJobSegments(Off|On)$' \
	-benchmem -count 3 ./internal/service | tee "$tmpbench"

# Merge: reopen the artifact before its closing brace and append the
# benchmark entries (fastest run per name, as in bench.sh — single samples
# on a shared host swing by more than the 5% claim).
sed '$d' "$tmpart" | sed '$ s/^  ]$/  ],/' > "$out"
awk '
/^Benchmark/ {
	name = $1; gmp = 1
	if (match(name, /-[0-9]+$/)) gmp = substr(name, RSTART + 1) + 0
	if (name in idx) {
		i = idx[name]
		if ($3 + 0 < ns[i] + 0) { iters[i] = $2; ns[i] = $3; bytes[i] = $5; allocs[i] = $7 }
		next
	}
	i = ++cnt; idx[name] = i
	names[i] = name; gmps[i] = gmp
	iters[i] = $2; ns[i] = $3; bytes[i] = $5; allocs[i] = $7
}
END {
	printf "  \"benchmarks\": [\n"
	for (i = 1; i <= cnt; i++)
		printf "    {\"name\": \"%s\", \"gomaxprocs\": %d, \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
			names[i], gmps[i], iters[i], ns[i], bytes[i], allocs[i], (i < cnt ? "," : "")
	printf "  ]\n"
}' "$tmpbench" >> "$out"
printf '}\n' >> "$out"

echo "wrote $out"
