#!/bin/sh
# verify.sh — the repository's verification gates (see ROADMAP.md).
#
#   tier 1: go build ./... && go test ./...
#   tier 2: go vet ./... && go test -race ./...
#
# Tier 2 exists because the worker fan-out (internal/par, internal/abm,
# internal/experiments), the rumord service stack (internal/service job
# queue, result cache, concurrent E2E suite — including the SSE streaming
# tests, which exercise journal fan-out, live subscribers and mid-stream
# cancellation under the detector), the durable store (internal/store:
# WAL appends racing the batched-fsync flusher, concurrent blob Put/Get/GC,
# and the service's crash-recovery E2E) and the cluster layer (internal/
# cluster's lease table under concurrent grant/extend/expire, plus the
# coordinator/worker crash matrix in internal/cluster/worker — worker
# kill mid-job, coordinator restart with leased jobs, poison-job
# exhaustion, both drain directions — and the telemetry relay layered on
# it: worker-side span/journal/snapshot buffers racing the heartbeat
# goroutine, the coordinator's relay merge racing /metrics scrapes and
# SSE followers, and the rumorctl -follow live tail against a real
# cluster) and the response-surface tier (internal/service's construction
# fan-out racing Close, interpolated queries racing an in-flight build,
# and the two-class admission queue under concurrent submit/lease/shed)
# must stay data-race free; -race
# roughly 10x-es the runtime, so it is a separate gate. Tier 2 also runs
# every benchmark for exactly one iteration — benchmarks bit-rot silently
# otherwise (the bench.sh suites only exercise their own subset). Usage:
#
#   scripts/verify.sh         # tier 1 only
#   scripts/verify.sh -race   # tier 1 + tier 2
set -eu

cd "$(dirname "$0")/.."

echo "== tier 1: build + test"
go build ./...
go test ./...

if [ "${1:-}" = "-race" ]; then
	echo "== tier 2: vet + race + bench smoke"
	go vet ./...
	go test -race ./...
	go test -run '^$' -bench . -benchtime 1x ./... > /dev/null
	# The rumorload smoke: a ~2s open-loop sweep against an in-process
	# rumord (one worker, the second phase offered past its capacity),
	# asserting the artifact schema, nonzero quantiles and the saturation
	# flip — the load-generator analogue of the E2E suite, kept explicit
	# here because it is the gate for the latency-SLO plane (DESIGN.md
	# §14) even though `go test -race ./...` already covers the package.
	echo "== tier 2: rumorload smoke"
	go test -race -count 1 -run 'TestSmokeSweep' ./internal/loadgen
	# The response-surface smoke: build a tiny threshold surface on the
	# loadtiny scenario over HTTP (grid points run as batch jobs, folded
	# and persisted), query it with an in-hull/out-of-hull mix, and check
	# the hit/fallback split — the explicit gate for the serving tier
	# (DESIGN.md §15); the service-side goroutine-leak and
	# query-during-construction races run under the package sweep above.
	echo "== tier 2: surface smoke"
	go test -race -count 1 -run 'TestSurfaceSmoke' ./internal/loadgen
fi

echo "verify: ok"
