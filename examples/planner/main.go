// Planner: a countermeasure budget exercise for a platform trust-and-safety
// team. An endemic rumor (r0 > 1) must be driven below 0.01% infected
// within a deadline. We compare three response strategies at equal outcome:
//
//   - a constant always-on policy,
//   - the reactive heuristic (control ∝ current infection), and
//   - the Pontryagin-optimal policy of the paper (Section IV),
//
// and print the optimal policy's decision reference — when to lean on
// spreading truth vs blocking spreaders.
//
//	go run ./examples/planner
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "planner:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		tf     = 60.0 // deadline
		target = 1e-4 // required terminal infected density
		epsMax = 0.8  // admissible control bound
		grid   = 500
		c1, c2 = 5.0, 10.0 // blocking costs twice as much as truth
	)
	cost := rumornet.ControlCost{C1: c1, C2: c2}

	rng := rand.New(rand.NewSource(3))
	dist, err := rumornet.SyntheticDiggDist(rng)
	if err != nil {
		return err
	}
	// Work on the 100 lowest-degree groups: the planning picture is the
	// same and each optimization run finishes in a second.
	dist, err = dist.Truncate(100)
	if err != nil {
		return err
	}
	m, err := rumornet.NewCalibratedModel(dist, 0.01, 0.05, 0.02, 2.1661,
		rumornet.OmegaSaturating(0.5, 0.5))
	if err != nil {
		return err
	}
	ic, err := m.UniformIC(0.1)
	if err != nil {
		return err
	}
	fmt.Printf("endemic rumor: r0 = %.3f; goal: infected ≤ %.2g%% within %g time units\n\n",
		m.R0(), 100*target, tf)

	// Strategy 1: constant controls, bisected to the cheapest level that
	// meets the target.
	constPol, err := cheapestConstant(m, ic, tf, target, grid, epsMax, cost)
	if err != nil {
		return err
	}

	// Strategy 2: the reactive heuristic, gain-calibrated to the target.
	heur, err := rumornet.CalibrateHeuristic(m, ic, tf, target, grid, epsMax, epsMax, cost)
	if err != nil {
		return err
	}

	// Strategy 3: the Pontryagin-optimal policy.
	opt, err := rumornet.OptimizeToTarget(m, ic, tf, target, rumornet.ControlOptions{
		Grid:    grid,
		MaxIter: 250,
		Eps1Max: epsMax,
		Eps2Max: epsMax,
		Cost:    cost,
	})
	if err != nil {
		return err
	}

	fmt.Println("strategy comparison at equal outcome:")
	fmt.Printf("  %-28s %14s %10s\n", "strategy", "running cost", "vs optimal")
	for _, row := range []struct {
		name string
		pol  *rumornet.ControlPolicy
	}{
		{"constant always-on", constPol},
		{"reactive heuristic", heur},
		{"Pontryagin optimal", opt},
	} {
		fmt.Printf("  %-28s %14.2f %9.1fx\n",
			row.name, row.pol.Cost.Running, row.pol.Cost.Running/opt.Cost.Running)
	}

	fmt.Println("\noptimal decision reference (what to do when):")
	fmt.Printf("  %8s  %12s  %12s  %s\n", "time", "ε1 (truth)", "ε2 (block)", "emphasis")
	n := len(opt.Schedule.T)
	for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
		j := int(frac * float64(n-1))
		e1, e2 := opt.Schedule.Eps1[j], opt.Schedule.Eps2[j]
		emph := "spread truth"
		if e2 > e1 {
			emph = "block spreaders"
		}
		fmt.Printf("  %8.1f  %12.4f  %12.4f  %s\n", opt.Schedule.T[j], e1, e2, emph)
	}
	fmt.Println("\nthe paper's Fig. 4(a) shape: truth-spreading carries the middle of the")
	fmt.Println("campaign; blocking spikes at the deadline to finish off the spreaders")
	return nil
}

// cheapestConstant bisects a single constant control level meeting the
// terminal target.
func cheapestConstant(m *rumornet.Model, ic []float64, tf, target float64, grid int, epsMax float64, cost rumornet.ControlCost) (*rumornet.ControlPolicy, error) {
	eval := func(level float64) (*rumornet.ControlPolicy, float64, error) {
		pol, err := rumornet.HeuristicCountermeasures(m, ic, tf, 0, grid, epsMax, epsMax, cost)
		if err != nil {
			return nil, 0, err
		}
		// Reuse the schedule shape with constant values.
		for j := range pol.Schedule.T {
			pol.Schedule.Eps1[j] = level
			pol.Schedule.Eps2[j] = level
		}
		bd, tr, err := rumornet.EvaluatePolicyCost(m, ic, pol.Schedule, cost)
		if err != nil {
			return nil, 0, err
		}
		pol.Cost = bd
		pol.Trajectory = tr
		var meanI float64
		_, yf := tr.Last()
		for i := 0; i < m.N(); i++ {
			meanI += m.Dist().Prob(i) * m.I(yf, i)
		}
		return pol, meanI, nil
	}
	lo, hi := 0.0, epsMax
	best, term, err := eval(hi)
	if err != nil {
		return nil, err
	}
	if term > target {
		return nil, fmt.Errorf("even ε = %g cannot reach the target", epsMax)
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		pol, term, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if term <= target {
			hi = mid
			best = pol
		} else {
			lo = mid
		}
	}
	return best, nil
}
