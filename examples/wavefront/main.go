// Wavefront: rumors travel. In a spatially embedded community (districts of
// a city, campuses, language regions) a rumor seeded in one place spreads
// as a traveling wave. This example builds the 1-D reaction–diffusion
// medium of the spatial extension, seeds the center district, watches the
// infection front move outward, and shows how blocking hard enough stalls
// the wave entirely (the spatial analogue of the r0 threshold).
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"os"
	"strings"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wavefront:", err)
		os.Exit(1)
	}
}

func run() error {
	for _, sc := range []struct {
		name string
		eps2 float64
	}{
		{"weak blocking (wave propagates)", 0.2},
		{"strong blocking (wave stalled)", 1.3},
	} {
		m, err := rumornet.NewSpatialModel(rumornet.SpatialConfig{
			Patches: 121,
			Length:  121,
			Lambda:  1.0,
			Eps2:    sc.eps2,
			DI:      0.5,
		})
		if err != nil {
			return err
		}
		ic, err := m.SeedCenter(1, 0.5)
		if err != nil {
			return err
		}
		sol, err := m.Simulate(ic, 50, 0.05)
		if err != nil {
			return err
		}

		fmt.Printf("— %s (ε2 = %g)\n", sc.name, sc.eps2)
		fmt.Printf("  Fisher–KPP predicted speed: %.3f districts/unit time\n", m.FisherSpeed(1))
		if speed, err := m.MeasureFrontSpeed(sol, 0.05); err == nil {
			fmt.Printf("  measured front speed:       %.3f\n", speed)
		} else {
			fmt.Printf("  measured front speed:       none (%v)\n", err)
		}

		// A crude space-time picture: infected density at 3 times.
		for _, t := range []float64{5, 20, 45} {
			y := sol.At(t)
			var b strings.Builder
			for p := 0; p < m.Patches(); p += 2 {
				switch v := y[m.Patches()+p]; {
				case v > 0.2:
					b.WriteByte('#')
				case v > 0.05:
					b.WriteByte('+')
				case v > 0.005:
					b.WriteByte('.')
				default:
					b.WriteByte(' ')
				}
			}
			fmt.Printf("  t=%4.0f |%s|\n", t, b.String())
		}
		fmt.Println()
	}
	fmt.Println("weak blocking lets the rumor sweep the whole domain as a constant-speed")
	fmt.Println("wave; blocking above the local growth rate extinguishes it in place")
	return nil
}
