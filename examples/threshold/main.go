// Threshold: map the extinction frontier r0 = 1 over the countermeasure
// plane (ε1 × ε2) for a Digg-like rumor — the "how much response is enough"
// chart a policy maker would pin on the wall. Every cell is an instance of
// Theorem 5: '.' means the rumor dies out (r0 ≤ 1), '#' means it persists.
//
//	go run ./examples/threshold
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "threshold:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(5))
	dist, err := rumornet.SyntheticDiggDist(rng)
	if err != nil {
		return err
	}

	// The paper's own evaluation setting: λ(k) = k, saturating ω.
	lambda := rumornet.LambdaLinear(1)
	omega := rumornet.OmegaSaturating(0.5, 0.5)
	const alpha = 0.01

	// Sweep both countermeasure rates across two decades.
	levels := []float64{0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2, 0.3, 0.5, 0.8}

	fmt.Println("extinction map for a Digg2009-scale rumor (rows: ε1, cols: ε2)")
	fmt.Println("'.' = extinct (r0 ≤ 1)   '#' = epidemic (r0 > 1)")
	fmt.Printf("\n%6s", "ε1\\ε2")
	for _, e2 := range levels {
		fmt.Printf("%6.2f", e2)
	}
	fmt.Println()

	var verified int
	for _, e1 := range levels {
		fmt.Printf("%6.2f", e1)
		for _, e2 := range levels {
			m, err := rumornet.NewModel(dist, rumornet.Params{
				Alpha: alpha, Eps1: e1, Eps2: e2, Lambda: lambda, Omega: omega,
			})
			if err != nil {
				return err
			}
			cell := "     #"
			if m.Classify() == rumornet.VerdictExtinct {
				cell = "     ."
			}
			fmt.Print(cell)
			verified++
		}
		fmt.Println()
	}

	// Pick one frontier cell and confirm the verdict by simulation.
	mExt, err := rumornet.NewModel(dist, rumornet.Params{
		Alpha: alpha, Eps1: 0.3, Eps2: 0.05, Lambda: lambda, Omega: omega,
	})
	if err != nil {
		return err
	}
	mEpi, err := rumornet.NewModel(dist, rumornet.Params{
		Alpha: alpha, Eps1: 0.05, Eps2: 0.05, Lambda: lambda, Omega: omega,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nspot check by simulation (I fraction after t = 400):\n")
	for _, m := range []*rumornet.Model{mExt, mEpi} {
		ic, err := m.UniformIC(0.05)
		if err != nil {
			return err
		}
		tr, err := m.Simulate(ic, 400, nil)
		if err != nil {
			return err
		}
		mean := tr.MeanISeries()
		fmt.Printf("  ε1=%.2f ε2=%.2f: r0 = %5.2f (%s) → simulated final I = %.5f\n",
			m.Params().Eps1, m.Params().Eps2, m.R0(), m.Classify(), mean[len(mean)-1])
	}
	fmt.Printf("\n%d (ε1, ε2) combinations classified via Theorem 5\n", verified)
	return nil
}
