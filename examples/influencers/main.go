// Influencers: "Rumor ends with Sage" — the paper's introduction describes
// blocking rumors at influential users identified by Degree, Betweenness or
// Core. This example spends the same blocking budget (2% of users) on each
// strategy and races them against random blocking and no response, on an
// explicit scale-free network with the agent-based simulator.
//
//	go run ./examples/influencers
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "influencers:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))

	// A 15k-user scale-free network (Barabási–Albert, heavy-tailed like a
	// follower graph).
	g, err := rumornet.NewBarabasiAlbert(15000, 6, rng)
	if err != nil {
		return err
	}
	budget := g.NumNodes() / 50
	fmt.Printf("network: %d users, %d edges; blocking budget: %d users (2%%)\n\n",
		g.NumNodes(), g.NumEdges(), budget)

	strategies := []struct {
		name string
		pick func() ([]int, error)
	}{
		{"no blocking", func() ([]int, error) { return nil, nil }},
		{"random users", func() ([]int, error) { return g.RandomK(budget, rng) }},
		{"top Degree", func() ([]int, error) { return g.TopKByOutDegree(budget) }},
		{"top Core", func() ([]int, error) { return g.TopKByCore(budget) }},
		{"top Betweenness", func() ([]int, error) { return g.TopKByBetweenness(budget, 300, rng) }},
	}

	base := rumornet.ABMConfig{
		Lambda: rumornet.LambdaLinear(0.07),
		Omega:  rumornet.OmegaSaturating(0.5, 0.5),
		Eps1:   0.002,
		Eps2:   0.03,
		I0:     0.005,
		Dt:     0.5,
		Steps:  200,
		Mode:   rumornet.ABMQuenched,
	}

	fmt.Printf("%-18s %12s %12s\n", "strategy", "peak I", "final I")
	for _, st := range strategies {
		blocked, err := st.pick()
		if err != nil {
			return err
		}
		cfg := base
		cfg.Blocked = blocked
		res, err := rumornet.RunABM(g, cfg, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %11.2f%% %11.2f%%\n", st.name, 100*res.PeakI(), 100*res.FinalI())
	}

	fmt.Println("\nwith equal budgets, centrality-targeted blocking crushes the outbreak")
	fmt.Println("while random blocking barely moves it — the heterogeneity the paper's")
	fmt.Println("degree-grouped model exists to capture")
	return nil
}
