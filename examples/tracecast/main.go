// Tracecast: data-driven outbreak forecasting. The Digg2009 release ships
// vote traces (who voted on which story, when); a story's earliest voters
// are a real-world initial condition for a rumor cascade. This example
// synthesizes Digg-style vote traces (stand-ins for digg_votes.csv), seeds
// the agent-based simulator from the biggest story's first 20 voters, and
// compares the spread with and without countermeasures.
//
//	go run ./examples/tracecast
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecast:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(23))

	// A Digg-like follower graph and synthetic vote traces on it.
	g, err := rumornet.NewBarabasiAlbert(12000, 5, rng)
	if err != nil {
		return err
	}
	votes, err := rumornet.SampleVotes(g, 40, 0.05, rng)
	if err != nil {
		return err
	}
	idx := rumornet.IndexVotes(votes)
	stories := idx.Stories()
	top := stories[0]
	fmt.Printf("traces: %d votes across %d stories; biggest story %d has %d votes\n\n",
		len(votes), len(stories), top, len(idx[top]))

	// Seed the cascade from the story's first 20 voters. SampleVotes uses
	// dense node ids, so the identity mapping applies.
	ids := make([]int64, g.NumNodes())
	for i := range ids {
		ids[i] = int64(i)
	}
	seeds, err := idx.SeedsFromStory(top, 20, ids)
	if err != nil {
		return err
	}
	fmt.Printf("seeding the rumor at story %d's first %d voters\n\n", top, len(seeds))

	for _, sc := range []struct {
		name       string
		eps1, eps2 float64
	}{
		{"no countermeasures", 0.001, 0.001},
		{"truth campaign + blocking", 0.03, 0.08},
	} {
		res, err := rumornet.RunABM(g, rumornet.ABMConfig{
			Lambda: rumornet.LambdaLinear(0.08),
			Omega:  rumornet.OmegaSaturating(0.5, 0.5),
			Eps1:   sc.eps1,
			Eps2:   sc.eps2,
			I0:     0.001, // ignored: explicit seeds below
			Seeds:  seeds,
			Dt:     0.5,
			Steps:  240,
			Mode:   rumornet.ABMQuenched,
		}, rng)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s peak %5.2f%%  final %5.2f%%\n",
			sc.name+":", 100*res.PeakI(), 100*res.FinalI())
	}
	fmt.Println("\nthe same trace-seeded outbreak collapses once countermeasures engage")
	return nil
}
