// Outbreak: a "bogus AP tweet" scenario — the paper's motivating example of
// the 2013 White House explosion rumor that wiped billions off the markets.
//
// A flash rumor seeds 0.1% of a Digg-like network. We forecast it twice:
// with the mean-field ODE model (instant, what an operator would use for a
// real-time decision) and with an agent-based Monte-Carlo simulation on the
// actual graph (slow, the "ground truth" the ODE approximates), then show
// what a fast blocking response changes.
//
//	go run ./examples/outbreak
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "outbreak:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// A scaled-down Digg-like follower graph (10k users) so the ABM runs in
	// seconds; the ODE consumes only its degree distribution.
	g, err := diggLikeGraph(rng, 10000)
	if err != nil {
		return err
	}
	dist, err := rumornet.DegreeDistFromGraph(g)
	if err != nil {
		return err
	}
	stats := rumornet.SummarizeDigg(g)
	fmt.Printf("network: %d users, %d follow links, mean degree %.1f\n\n",
		stats.Users, stats.Links, stats.MeanDegree)

	lambda := rumornet.LambdaLinear(0.1)
	omega := rumornet.OmegaSaturating(0.5, 0.5)
	const (
		i0 = 0.001 // the bogus tweet reaches 0.1% before anyone reacts
		tf = 80.0
	)

	scenarios := []struct {
		name       string
		eps1, eps2 float64
	}{
		{"no response", 0.002, 0.01},
		{"fast blocking + truth campaign", 0.05, 0.12},
	}
	for _, sc := range scenarios {
		m, err := rumornet.NewModel(dist, rumornet.Params{
			Alpha: 0, Eps1: sc.eps1, Eps2: sc.eps2, Lambda: lambda, Omega: omega,
		})
		if err != nil {
			return err
		}
		fmt.Printf("— scenario: %s (ε1 = %g, ε2 = %g)\n", sc.name, sc.eps1, sc.eps2)

		// Mean-field forecast. With a closed population (α = 0) the
		// relevant indicator is the effective reproduction number at the
		// current state (Theorem 2), not the nominal r0 (which is ∝ α).
		ic, err := m.UniformIC(i0)
		if err != nil {
			return err
		}
		fmt.Printf("  effective r at outbreak: %.2f\n", m.EffectiveR0(ic, sc.eps2))
		tr, err := m.Simulate(ic, tf, nil)
		if err != nil {
			return err
		}
		mean := tr.MeanISeries()
		fmt.Printf("  ODE forecast:   peak %5.2f%% infected, final %5.2f%%\n",
			100*peakOf(mean), 100*mean[len(mean)-1])

		// Ground truth: agents on the real graph.
		res, err := rumornet.RunABM(g, rumornet.ABMConfig{
			Lambda: lambda, Omega: omega,
			Eps1: sc.eps1, Eps2: sc.eps2,
			I0: i0, Dt: 0.5, Steps: int(tf / 0.5),
			Mode: rumornet.ABMQuenched,
		}, rng)
		if err != nil {
			return err
		}
		fmt.Printf("  ABM simulation: peak %5.2f%% infected, final %5.2f%%\n\n",
			100*res.PeakI(), 100*res.FinalI())
	}
	fmt.Println("the mean-field forecast tracks the agent-based ground truth — and a")
	fmt.Println("prompt countermeasure response flips the verdict from epidemic to extinct")
	return nil
}

// diggLikeGraph builds a small power-law follower graph with Digg-like
// shape (mean degree ≈ 24, heavy tail).
func diggLikeGraph(rng *rand.Rand, users int) (*rumornet.Graph, error) {
	full, err := rumornet.SyntheticDiggDist(rng)
	if err != nil {
		return nil, err
	}
	// Sample a degree sequence for the scaled-down population from the
	// full distribution (capped so the configuration model stays sparse).
	seq := make([]int, users)
	ks := full.Degrees()
	ps := full.Probs()
	for i := range seq {
		u := rng.Float64()
		acc := 0.0
		for j, p := range ps {
			acc += p
			if u <= acc {
				seq[i] = ks[j]
				break
			}
		}
		if seq[i] == 0 {
			seq[i] = ks[len(ks)-1]
		}
		if seq[i] > users/20 {
			seq[i] = users / 20
		}
	}
	return rumornet.NewConfigurationGraph(seq, rng)
}

func peakOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
