// Quickstart: build a rumor model on a Digg2009-like network, check the
// critical conditions (Theorem 5), and simulate the outbreak.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"rumornet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A heterogeneous social network, as a degree distribution P(k).
	//    SyntheticDiggDist reproduces the Digg2009 statistics from the
	//    paper; any graph's distribution works (see NewModelFromGraph).
	rng := rand.New(rand.NewSource(42))
	dist, err := rumornet.SyntheticDiggDist(rng)
	if err != nil {
		return err
	}
	fmt.Printf("network: %d degree groups, mean degree %.1f\n", dist.N(), dist.MeanDegree())

	// 2. The rumor and the countermeasures. ε1 immunizes susceptibles by
	//    spreading truth; ε2 blocks infected spreaders. λ(k) = k is the
	//    paper's own acceptance rate (Section V-A).
	params := rumornet.Params{
		Alpha:  0.01,                             // new users engaging with the topic
		Eps1:   0.2,                              // spread-truth rate
		Eps2:   0.05,                             // blocking rate
		Lambda: rumornet.LambdaLinear(1),         // acceptance rate λ(k) = k
		Omega:  rumornet.OmegaSaturating(.5, .5), // saturating infectivity
	}
	m, err := rumornet.NewModel(dist, params)
	if err != nil {
		return err
	}

	// 3. The critical conditions: will this rumor die out or persist?
	eq, err := m.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("countermeasures (ε1=%.2f, ε2=%.2f): r0 = %.3f → %s\n",
		params.Eps1, params.Eps2, eq.R0, eq.Verdict)

	// 4. Weaken the countermeasures and the same rumor turns endemic.
	weak := params
	weak.Eps1, weak.Eps2 = 0.06, 0.06
	mw, err := rumornet.NewModel(dist, weak)
	if err != nil {
		return err
	}
	eqw, err := mw.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("countermeasures (ε1=%.2f, ε2=%.2f): r0 = %.3f → %s",
		weak.Eps1, weak.Eps2, eqw.R0, eqw.Verdict)
	if eqw.Positive != nil {
		fmt.Printf(" (endemic level Θ+ = %.4g)", eqw.Positive.Theta)
	}
	fmt.Println()

	// 5. Simulate both from a 5%-infected start.
	for _, mm := range []*rumornet.Model{m, mw} {
		ic, err := mm.UniformIC(0.05)
		if err != nil {
			return err
		}
		tr, err := mm.Simulate(ic, 150, nil)
		if err != nil {
			return err
		}
		mean := tr.MeanISeries()
		fmt.Printf("  %s: infected fraction 0h %.3f → peak %.3f → end %.4f\n",
			mm.Classify(), mean[0], peakOf(mean), mean[len(mean)-1])
	}
	return nil
}

func peakOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
